package core

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cloud"
	"repro/internal/crypt"
	"repro/internal/geo"
	"repro/internal/gps"
	"repro/internal/por"
)

// memConn serves segments straight from an encoded file in memory — the
// fastest possible honest prover, used to exercise scheduler mechanics
// without a network model.
type memConn struct{ store *por.Store }

func (c *memConn) GetSegment(_ context.Context, fileID string, index uint64) ([]byte, error) {
	return c.store.ReadSegment(int64(index))
}

// corruptConn flips a payload byte in every returned segment.
type corruptConn struct{ store *por.Store }

func (c *corruptConn) GetSegment(_ context.Context, fileID string, index uint64) ([]byte, error) {
	seg, err := c.store.ReadSegment(int64(index))
	if err != nil {
		return nil, err
	}
	bad := append([]byte(nil), seg...)
	bad[0] ^= 0xFF
	return bad, nil
}

// countingRunner tracks the concurrent RunAudit calls passing through it.
type countingRunner struct {
	inner AuditRunner
	delay time.Duration
	cur   atomic.Int64
	max   atomic.Int64
}

func (r *countingRunner) RunAudit(ctx context.Context, req AuditRequest) (SignedTranscript, error) {
	n := r.cur.Add(1)
	defer r.cur.Add(-1)
	for {
		m := r.max.Load()
		if n <= m || r.max.CompareAndSwap(m, n) {
			break
		}
	}
	if r.delay > 0 {
		time.Sleep(r.delay)
	}
	return r.inner.RunAudit(ctx, req)
}

// hungRunner never answers until released or cancelled. It counts the
// goroutines currently parked inside it, so tests can assert that the
// scheduler's cancellation of abandoned attempts actually reclaims them
// (the pre-context scheduler leaked one goroutine per timed-out attempt
// here).
type hungRunner struct {
	release chan struct{}
	active  atomic.Int64
}

func (r *hungRunner) RunAudit(ctx context.Context, _ AuditRequest) (SignedTranscript, error) {
	r.active.Add(1)
	defer r.active.Add(-1)
	select {
	case <-r.release:
		return SignedTranscript{}, errors.New("released")
	case <-ctx.Done():
		return SignedTranscript{}, ctx.Err()
	}
}

// flakyRunner fails its first failures calls with a transport error, then
// delegates.
type flakyRunner struct {
	inner    AuditRunner
	failures int32
	calls    atomic.Int32
}

func (r *flakyRunner) RunAudit(ctx context.Context, req AuditRequest) (SignedTranscript, error) {
	if r.calls.Add(1) <= r.failures {
		return SignedTranscript{}, errors.New("connection reset by prover")
	}
	return r.inner.RunAudit(ctx, req)
}

// schedFixture is a scheduler-ready deployment: one encoded file, a local
// verifier on the wall clock and a TPA with a generous timing policy (the
// in-memory provers answer in nanoseconds; the loose Δt_max keeps the
// tests robust on loaded single-core CI runners).
type schedFixture struct {
	ef       *por.EncodedFile
	store    *por.Store
	verifier *Verifier
	tpa      *TPA
}

func newSchedFixture(t *testing.T) *schedFixture {
	t.Helper()
	enc, ef := encodeTestFile(t)
	signer, err := crypt.NewSigner()
	if err != nil {
		t.Fatal(err)
	}
	verifier, err := NewVerifier(signer, &gps.Receiver{True: geo.Brisbane}, nil)
	if err != nil {
		t.Fatal(err)
	}
	policy := DefaultPolicy(cloud.SLA{Center: geo.Brisbane, RadiusKm: 100})
	policy.TMax = 5 * time.Second
	tpa, err := NewTPA(enc.WithConcurrency(1), signer.Public(), policy)
	if err != nil {
		t.Fatal(err)
	}
	return &schedFixture{ef: ef, store: por.NewStore(ef), verifier: verifier, tpa: tpa}
}

func (f *schedFixture) task(tenant, prover string, k int) AuditTask {
	return AuditTask{Tenant: tenant, Prover: prover, FileID: f.ef.FileID, Layout: f.ef.Layout, K: k}
}

// TestSchedulerInFlightBoundNeverExceeded is the acceptance-scale run:
// 100 tenants × 10 provers, and no prover ever sees more than ProverWindow
// concurrent audits (run under -race in CI).
func TestSchedulerInFlightBoundNeverExceeded(t *testing.T) {
	f := newSchedFixture(t)
	const (
		tenants = 100
		provers = 10
		window  = 3
	)
	sched := NewScheduler(SchedulerConfig{Workers: 32, ProverWindow: window})
	runners := make([]*countingRunner, provers)
	for p := 0; p < provers; p++ {
		runners[p] = &countingRunner{
			inner: &LocalRunner{Verifier: f.verifier, Conn: &memConn{store: f.store}},
			delay: 100 * time.Microsecond,
		}
		sched.RegisterProver(fmt.Sprintf("prover-%02d", p), runners[p])
	}
	var tasks []AuditTask
	for tn := 0; tn < tenants; tn++ {
		tenant := fmt.Sprintf("tenant-%03d", tn)
		sched.RegisterTenant(tenant, f.tpa)
		for p := 0; p < provers; p++ {
			tasks = append(tasks, f.task(tenant, fmt.Sprintf("prover-%02d", p), 2))
		}
	}

	verdicts := sched.RunEpoch(context.Background(), tasks)
	if len(verdicts) != tenants*provers {
		t.Fatalf("got %d verdicts, want %d", len(verdicts), tenants*provers)
	}
	for _, v := range verdicts {
		if v.Outcome != OutcomeAccepted {
			t.Fatalf("audit %s/%s: outcome %v (%s; report: %s)",
				v.Task.Tenant, v.Task.Prover, v.Outcome, v.Err, v.Report.Reason())
		}
		if v.Epoch != 1 {
			t.Fatalf("verdict epoch = %d, want 1", v.Epoch)
		}
	}
	for p, r := range runners {
		if m := r.max.Load(); m > window {
			t.Errorf("prover-%02d saw %d concurrent audits, window is %d", p, m, window)
		}
	}

	// The ledger has one cell per (tenant, prover, epoch), each accepted.
	rows := sched.Ledger().Snapshot()
	if len(rows) != tenants*provers {
		t.Fatalf("ledger has %d cells, want %d", len(rows), tenants*provers)
	}
	for _, row := range rows {
		if row.Audits != 1 || row.Accepted != 1 {
			t.Fatalf("ledger cell %v: %+v", row.LedgerKey, row.LedgerEntry)
		}
	}
	byTenant := sched.Ledger().TotalsByTenant()
	if len(byTenant) != tenants {
		t.Fatalf("TotalsByTenant has %d rows, want %d", len(byTenant), tenants)
	}
	for _, row := range byTenant {
		if row.Audits != provers || row.Accepted != provers {
			t.Fatalf("tenant %s totals: %+v", row.Name, row.LedgerEntry)
		}
	}
}

// TestSchedulerTimeoutReleasesWindow: a prover that never responds yields
// timeout verdicts, and its single window slot is freed at each deadline
// so queued audits behind it still reach a verdict.
func TestSchedulerTimeoutReleasesWindow(t *testing.T) {
	f := newSchedFixture(t)
	release := make(chan struct{})
	defer close(release) // let abandoned attempts exit
	sched := NewScheduler(SchedulerConfig{
		Workers:      2,
		ProverWindow: 1,
		Timeout:      30 * time.Millisecond,
		Retries:      1,
	})
	sched.RegisterTenant("t1", f.tpa)
	sched.RegisterProver("dead", &hungRunner{release: release})

	done := make(chan []Verdict, 1)
	go func() {
		done <- sched.RunEpoch(context.Background(), []AuditTask{f.task("t1", "dead", 2), f.task("t1", "dead", 2)})
	}()
	var verdicts []Verdict
	select {
	case verdicts = <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("epoch did not finish: timed-out audits are not releasing the prover window")
	}
	for i, v := range verdicts {
		if v.Outcome != OutcomeTimeout {
			t.Fatalf("verdict %d: outcome %v, want timeout (err %q)", i, v.Outcome, v.Err)
		}
		if v.Attempts != 2 {
			t.Errorf("verdict %d: %d attempts, want 2 (1 retry)", i, v.Attempts)
		}
		if !strings.Contains(v.Err, "timed out") {
			t.Errorf("verdict %d: err %q does not mention the timeout", i, v.Err)
		}
	}
	entry, ok := sched.Ledger().Entry("t1", "dead", 1)
	if !ok || entry.Timeouts != 2 || entry.Audits != 2 {
		t.Fatalf("ledger entry = %+v, ok=%v; want 2 timeouts", entry, ok)
	}
}

// TestSchedulerCorruptProverRejectedNotRetried: corrupt transcripts are
// verdicts — recorded as rejections with the MAC detail, never retried,
// and the window slot is released so later audits proceed.
func TestSchedulerCorruptProverRejectedNotRetried(t *testing.T) {
	f := newSchedFixture(t)
	sched := NewScheduler(SchedulerConfig{
		Workers:      2,
		ProverWindow: 1,
		Retries:      3, // must NOT be spent on rejections
	})
	sched.RegisterTenant("t1", f.tpa)
	sched.RegisterProver("corrupt", &LocalRunner{
		Verifier: f.verifier,
		Conn:     &corruptConn{store: f.store},
	})

	verdicts := sched.RunEpoch(context.Background(), []AuditTask{
		f.task("t1", "corrupt", 3),
		f.task("t1", "corrupt", 3),
	})
	for i, v := range verdicts {
		if v.Outcome != OutcomeRejected {
			t.Fatalf("verdict %d: outcome %v, want rejected", i, v.Outcome)
		}
		if v.Attempts != 1 {
			t.Errorf("verdict %d: %d attempts; rejections must not be retried", i, v.Attempts)
		}
		if v.Report.MACsOK || v.Report.SegmentsBad != 3 {
			t.Errorf("verdict %d: report %+v, want 3 bad segments", i, v.Report)
		}
	}
	entry, _ := sched.Ledger().Entry("t1", "corrupt", 1)
	if entry.Rejected != 2 || entry.LastReason == "" {
		t.Fatalf("ledger entry = %+v; want 2 rejections with a reason", entry)
	}
}

// TestSchedulerRetryThenAccept: a transient transport failure is retried
// (with a fresh nonce) and the second attempt's transcript is accepted.
func TestSchedulerRetryThenAccept(t *testing.T) {
	f := newSchedFixture(t)
	sched := NewScheduler(SchedulerConfig{
		Workers:      1,
		ProverWindow: 1,
		Retries:      2,
		RetryBackoff: time.Millisecond,
	})
	sched.RegisterTenant("t1", f.tpa)
	sched.RegisterProver("flaky", &flakyRunner{
		inner:    &LocalRunner{Verifier: f.verifier, Conn: &memConn{store: f.store}},
		failures: 1,
	})

	verdicts := sched.RunEpoch(context.Background(), []AuditTask{f.task("t1", "flaky", 2)})
	if v := verdicts[0]; v.Outcome != OutcomeAccepted || v.Attempts != 2 {
		t.Fatalf("verdict = %+v, want accepted on attempt 2", v)
	}
}

// TestSchedulerUnregisteredNames: tasks naming unknown tenants or provers
// become error verdicts instead of panics or silent drops.
func TestSchedulerUnregisteredNames(t *testing.T) {
	f := newSchedFixture(t)
	sched := NewScheduler(SchedulerConfig{Workers: 1})
	sched.RegisterTenant("t1", f.tpa)

	verdicts := sched.RunEpoch(context.Background(), []AuditTask{
		f.task("ghost", "prover", 2),
		f.task("t1", "ghost", 2),
	})
	for i, v := range verdicts {
		if v.Outcome != OutcomeError || !strings.Contains(v.Err, "unregistered") {
			t.Fatalf("verdict %d = %+v, want unregistered error", i, v)
		}
	}
}

// TestSchedulerEpochsAccumulate: epochs number consecutively and the
// ledger keeps every epoch's cells apart.
func TestSchedulerEpochsAccumulate(t *testing.T) {
	f := newSchedFixture(t)
	sched := NewScheduler(SchedulerConfig{Workers: 2, ProverWindow: 2})
	sched.RegisterTenant("t1", f.tpa)
	sched.RegisterProver("p1", &LocalRunner{Verifier: f.verifier, Conn: &memConn{store: f.store}})

	for epoch := 1; epoch <= 3; epoch++ {
		verdicts := sched.RunEpoch(context.Background(), []AuditTask{f.task("t1", "p1", 2)})
		if got := verdicts[0].Epoch; got != uint64(epoch) {
			t.Fatalf("epoch = %d, want %d", got, epoch)
		}
	}
	if rows := sched.Ledger().Snapshot(); len(rows) != 3 {
		t.Fatalf("ledger has %d cells, want one per epoch (3)", len(rows))
	}
	byProver := sched.Ledger().TotalsByProver()
	if len(byProver) != 1 || byProver[0].Audits != 3 {
		t.Fatalf("TotalsByProver = %+v, want 3 audits on p1", byProver)
	}
}

// TestAuditLedgerCompactBefore: old epochs fold into the epoch-0 archive
// cell, totals are unchanged, and ledger size is bounded.
func TestAuditLedgerCompactBefore(t *testing.T) {
	f := newSchedFixture(t)
	sched := NewScheduler(SchedulerConfig{Workers: 1})
	sched.RegisterTenant("t1", f.tpa)
	sched.RegisterProver("p1", &LocalRunner{Verifier: f.verifier, Conn: &memConn{store: f.store}})
	for epoch := 0; epoch < 4; epoch++ {
		sched.RunEpoch(context.Background(), []AuditTask{f.task("t1", "p1", 2)})
	}

	sched.Ledger().CompactBefore(4)
	rows := sched.Ledger().Snapshot()
	if len(rows) != 2 {
		t.Fatalf("ledger has %d cells after compaction, want archive + epoch 4: %+v", len(rows), rows)
	}
	if rows[0].Epoch != 0 || rows[0].Audits != 3 {
		t.Fatalf("archive cell = %+v, want epoch 0 with 3 audits", rows[0])
	}
	if rows[1].Epoch != 4 || rows[1].Audits != 1 {
		t.Fatalf("live cell = %+v, want epoch 4 with 1 audit", rows[1])
	}
	totals := sched.Ledger().TotalsByProver()
	if len(totals) != 1 || totals[0].Audits != 4 || totals[0].Accepted != 4 {
		t.Fatalf("totals after compaction = %+v, want 4 accepted audits", totals)
	}

	// Compacting again with the same horizon is a no-op.
	sched.Ledger().CompactBefore(4)
	if again := sched.Ledger().Snapshot(); len(again) != 2 {
		t.Fatalf("recompaction changed the ledger: %+v", again)
	}
}

// TestSchedulerOnVerdictHook: the live-summary hook observes every
// verdict exactly once.
func TestSchedulerOnVerdictHook(t *testing.T) {
	f := newSchedFixture(t)
	var mu sync.Mutex
	seen := 0
	sched := NewScheduler(SchedulerConfig{
		Workers: 4,
		OnVerdict: func(Verdict) {
			mu.Lock()
			seen++
			mu.Unlock()
		},
	})
	sched.RegisterTenant("t1", f.tpa)
	sched.RegisterProver("p1", &LocalRunner{Verifier: f.verifier, Conn: &memConn{store: f.store}})
	tasks := make([]AuditTask, 8)
	for i := range tasks {
		tasks[i] = f.task("t1", "p1", 2)
	}
	sched.RunEpoch(context.Background(), tasks)
	if seen != len(tasks) {
		t.Fatalf("OnVerdict fired %d times, want %d", seen, len(tasks))
	}
}

// TestFairOrder: round-robin interleave across tenants, first-appearance
// tenant order, per-tenant order preserved, weights honoured.
func TestFairOrder(t *testing.T) {
	mk := func(tenant string, n int) []AuditTask {
		out := make([]AuditTask, n)
		for i := range out {
			out[i] = AuditTask{Tenant: tenant, FileID: fmt.Sprintf("%s/%d", tenant, i)}
		}
		return out
	}
	var tasks []AuditTask
	tasks = append(tasks, mk("a", 3)...)
	tasks = append(tasks, mk("b", 1)...)
	tasks = append(tasks, mk("c", 2)...)

	got := FairOrder(tasks, nil)
	want := []string{"a/0", "b/0", "c/0", "a/1", "c/1", "a/2"}
	for i, w := range want {
		if got[i].FileID != w {
			t.Fatalf("FairOrder[%d] = %s, want %s (full: %v)", i, got[i].FileID, w, ids(got))
		}
	}

	weighted := FairOrder(tasks, map[string]int{"a": 2})
	wantW := []string{"a/0", "a/1", "b/0", "c/0", "a/2", "c/1"}
	for i, w := range wantW {
		if weighted[i].FileID != w {
			t.Fatalf("weighted FairOrder[%d] = %s, want %s (full: %v)", i, weighted[i].FileID, w, ids(weighted))
		}
	}

	if out := FairOrder(nil, nil); len(out) != 0 {
		t.Fatalf("FairOrder(nil) = %v", out)
	}
}

func ids(tasks []AuditTask) []string {
	out := make([]string, len(tasks))
	for i, t := range tasks {
		out[i] = t.FileID
	}
	return out
}

// TestDialProverRunnerAttemptDeadline: against a prover that accepts the
// connection and then goes silent, the runner's own I/O deadline unblocks
// the attempt — the abandoned-goroutine path never accumulates hung
// connections.
func TestDialProverRunnerAttemptDeadline(t *testing.T) {
	f := newSchedFixture(t)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // accept and never answer
		}
	}()

	runner := &DialProverRunner{
		Verifier: f.verifier,
		Dial: func() (ProverConn, error) {
			return DialProver(lis.Addr().String(), time.Second)
		},
		AttemptTimeout: 50 * time.Millisecond,
	}
	req, err := f.tpa.NewRequest(f.ef.FileID, f.ef.Layout, 2)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	st, err := runner.RunAudit(context.Background(), req)
	if err != nil {
		t.Fatalf("RunAudit returned a transport error %v; hung rounds should be recorded as failed", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("attempt took %v; the I/O deadline did not fire", elapsed)
	}
	for i, r := range st.Transcript.Rounds {
		if !r.Failed {
			t.Fatalf("round %d against a silent prover did not fail", i)
		}
	}
}

// TestSchedulerOverTCP drives the scheduler through the real wire
// transport: a ProverServer on a loopback listener, fresh connection per
// audit via DialProverRunner.
func TestSchedulerOverTCP(t *testing.T) {
	f := newSchedFixture(t)
	addr, stop := startServer(t, &cloud.HonestProvider{Site: honestSite(t, f.ef)}, false)
	defer stop()

	sched := NewScheduler(SchedulerConfig{Workers: 4, ProverWindow: 2, Timeout: 5 * time.Second})
	sched.RegisterTenant("t1", f.tpa)
	sched.RegisterTenant("t2", f.tpa)
	sched.RegisterProver("tcp", &DialProverRunner{
		Verifier: f.verifier,
		Dial: func() (ProverConn, error) {
			return DialProver(addr, 2*time.Second)
		},
	})

	verdicts := sched.RunEpoch(context.Background(), []AuditTask{
		f.task("t1", "tcp", 3), f.task("t2", "tcp", 3),
		f.task("t1", "tcp", 3), f.task("t2", "tcp", 3),
	})
	for i, v := range verdicts {
		if v.Outcome != OutcomeAccepted {
			t.Fatalf("TCP verdict %d: %v (%s; %s)", i, v.Outcome, v.Err, v.Report.Reason())
		}
	}
	byTenant := sched.Ledger().TotalsByTenant()
	if len(byTenant) != 2 || byTenant[0].Accepted != 2 || byTenant[1].Accepted != 2 {
		t.Fatalf("TotalsByTenant = %+v", byTenant)
	}
}

// TestSchedulerCancelsAbandonedAttempts: every timed-out attempt's
// context is cancelled, so a ctx-aware runner unwinds instead of parking
// a goroutine per abandoned attempt until process exit (the ROADMAP leak
// this PR closes). The release channel is never closed: only
// cancellation can reclaim the attempts.
func TestSchedulerCancelsAbandonedAttempts(t *testing.T) {
	f := newSchedFixture(t)
	hung := &hungRunner{release: make(chan struct{})}
	sched := NewScheduler(SchedulerConfig{
		Workers:      4,
		ProverWindow: 2,
		Timeout:      20 * time.Millisecond,
		Retries:      1,
	})
	sched.RegisterTenant("t1", f.tpa)
	sched.RegisterProver("dead", hung)

	tasks := make([]AuditTask, 6)
	for i := range tasks {
		tasks[i] = f.task("t1", "dead", 2)
	}
	verdicts := sched.RunEpoch(context.Background(), tasks)
	for i, v := range verdicts {
		if v.Outcome != OutcomeTimeout {
			t.Fatalf("verdict %d: outcome %v, want timeout", i, v.Outcome)
		}
	}
	// 6 tasks x 2 attempts all hung; cancellation must drain every one.
	deadline := time.Now().Add(2 * time.Second)
	for hung.active.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d abandoned attempts still parked in the runner; cancellation is not reclaiming them", hung.active.Load())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSchedulerEpochContextCancel: cancelling the epoch's parent context
// drains the remaining tasks promptly as error verdicts (not timeouts),
// without waiting out each per-attempt deadline.
func TestSchedulerEpochContextCancel(t *testing.T) {
	f := newSchedFixture(t)
	hung := &hungRunner{release: make(chan struct{})}
	sched := NewScheduler(SchedulerConfig{
		Workers:      2,
		ProverWindow: 1,
		Timeout:      time.Hour, // per-attempt deadline alone would stall the test
	})
	sched.RegisterTenant("t1", f.tpa)
	sched.RegisterProver("dead", hung)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	done := make(chan []Verdict, 1)
	go func() { done <- sched.RunEpoch(ctx, []AuditTask{f.task("t1", "dead", 2), f.task("t1", "dead", 2)}) }()
	select {
	case verdicts := <-done:
		for i, v := range verdicts {
			if v.Outcome != OutcomeError {
				t.Fatalf("verdict %d after epoch cancel: outcome %v (%s), want error", i, v.Outcome, v.Err)
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled epoch did not drain")
	}
}

// TestSchedulerProverPolicyOverrides: per-prover knobs layer over the
// fleet defaults — a slow prover with a widened per-prover timeout is
// accepted while an identical prover on the fleet deadline times out,
// and a policy can turn retries off for one prover only.
func TestSchedulerProverPolicyOverrides(t *testing.T) {
	f := newSchedFixture(t)
	slow := func() AuditRunner {
		return &countingRunner{
			inner: &LocalRunner{Verifier: f.verifier, Conn: &memConn{store: f.store}},
			delay: 60 * time.Millisecond,
		}
	}
	sched := NewScheduler(SchedulerConfig{
		Workers:      4,
		ProverWindow: 2,
		Timeout:      20 * time.Millisecond,
		Retries:      0,
	})
	sched.RegisterTenant("t1", f.tpa)
	sched.RegisterProver("slow-default", slow())
	sched.RegisterProverPolicy("slow-wide", slow(), ProverPolicy{Timeout: 5 * time.Second})
	sched.RegisterProverPolicy("slow-nodeadline", slow(), ProverPolicy{Timeout: -1})

	verdicts := sched.RunEpoch(context.Background(), []AuditTask{
		f.task("t1", "slow-default", 2),
		f.task("t1", "slow-wide", 2),
		f.task("t1", "slow-nodeadline", 2),
	})
	byProver := map[string]Verdict{}
	for _, v := range verdicts {
		byProver[v.Task.Prover] = v
	}
	if v := byProver["slow-default"]; v.Outcome != OutcomeTimeout {
		t.Fatalf("slow-default: outcome %v (%s), want timeout under the fleet deadline", v.Outcome, v.Err)
	}
	if v := byProver["slow-wide"]; v.Outcome != OutcomeAccepted {
		t.Fatalf("slow-wide: outcome %v (%s), want accepted under its widened deadline", v.Outcome, v.Err)
	}
	if v := byProver["slow-nodeadline"]; v.Outcome != OutcomeAccepted {
		t.Fatalf("slow-nodeadline: outcome %v (%s), want accepted with no deadline", v.Outcome, v.Err)
	}

	// Retries: fleet default retries twice; a per-prover policy of -1
	// must fail a flaky prover on the first transport error.
	sched2 := NewScheduler(SchedulerConfig{Workers: 1, Retries: 2})
	sched2.RegisterTenant("t1", f.tpa)
	sched2.RegisterProverPolicy("flaky-noretry", &flakyRunner{
		inner:    &LocalRunner{Verifier: f.verifier, Conn: &memConn{store: f.store}},
		failures: 1,
	}, ProverPolicy{Retries: -1})
	sched2.RegisterProver("flaky-default", &flakyRunner{
		inner:    &LocalRunner{Verifier: f.verifier, Conn: &memConn{store: f.store}},
		failures: 1,
	})
	verdicts = sched2.RunEpoch(context.Background(), []AuditTask{
		f.task("t1", "flaky-noretry", 2),
		f.task("t1", "flaky-default", 2),
	})
	byProver = map[string]Verdict{}
	for _, v := range verdicts {
		byProver[v.Task.Prover] = v
	}
	if v := byProver["flaky-noretry"]; v.Outcome != OutcomeError || v.Attempts != 1 {
		t.Fatalf("flaky-noretry: %+v, want 1 attempt ending in error", v)
	}
	if v := byProver["flaky-default"]; v.Outcome != OutcomeAccepted || v.Attempts != 2 {
		t.Fatalf("flaky-default: %+v, want acceptance on attempt 2", v)
	}

	// Window: a per-prover window of 1 beats the fleet default of 4.
	counting := &countingRunner{
		inner: &LocalRunner{Verifier: f.verifier, Conn: &memConn{store: f.store}},
		delay: 2 * time.Millisecond,
	}
	sched3 := NewScheduler(SchedulerConfig{Workers: 8, ProverWindow: 4})
	sched3.RegisterTenant("t1", f.tpa)
	sched3.RegisterProverPolicy("narrow", counting, ProverPolicy{Window: 1})
	tasks := make([]AuditTask, 8)
	for i := range tasks {
		tasks[i] = f.task("t1", "narrow", 2)
	}
	sched3.RunEpoch(context.Background(), tasks)
	if m := counting.max.Load(); m > 1 {
		t.Fatalf("narrow prover saw %d concurrent audits, policy window is 1", m)
	}
}

// TestVerifierRunAuditCancelled: cancelling mid-audit aborts without a
// transcript and surfaces the context error.
func TestVerifierRunAuditCancelled(t *testing.T) {
	f := newSchedFixture(t)
	req, err := f.tpa.NewRequest(f.ef.FileID, f.ef.Layout, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := f.verifier.RunAudit(ctx, req, &memConn{store: f.store}); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunAudit on a cancelled ctx: err = %v, want context.Canceled", err)
	}
}

// TestSchedulerEpochDeadlineNotBlamedOnProver: when the *epoch's* context
// deadline expires, drained tasks must land as error verdicts — a prover
// must only be charged an OutcomeTimeout for its own per-attempt
// deadline, never for the epoch's.
func TestSchedulerEpochDeadlineNotBlamedOnProver(t *testing.T) {
	f := newSchedFixture(t)
	hung := &hungRunner{release: make(chan struct{})}
	sched := NewScheduler(SchedulerConfig{
		Workers:      2,
		ProverWindow: 1,
		Timeout:      time.Hour, // the prover's own deadline never fires
	})
	sched.RegisterTenant("t1", f.tpa)
	sched.RegisterProver("dead", hung)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	done := make(chan []Verdict, 1)
	go func() { done <- sched.RunEpoch(ctx, []AuditTask{f.task("t1", "dead", 2), f.task("t1", "dead", 2)}) }()
	select {
	case verdicts := <-done:
		for i, v := range verdicts {
			if v.Outcome != OutcomeError {
				t.Fatalf("verdict %d after epoch deadline: outcome %v (%s), want error", i, v.Outcome, v.Err)
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("epoch with an expired deadline did not drain")
	}
	entry, ok := sched.Ledger().Entry("t1", "dead", 1)
	if !ok || entry.Timeouts != 0 || entry.Errors != 2 {
		t.Fatalf("ledger entry = %+v, ok=%v; epoch deadline must not count as prover timeouts", entry, ok)
	}
}
