package core

import (
	"math/rand"
	"testing"
	"time"
)

func TestBackoffZeroValueInert(t *testing.T) {
	var b Backoff
	for attempt := 0; attempt < 5; attempt++ {
		if d := b.Delay(attempt); d != 0 {
			t.Fatalf("zero Backoff.Delay(%d) = %v, want 0", attempt, d)
		}
	}
}

func TestBackoffDeterministicGrowthAndCap(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: 60 * time.Millisecond}
	want := []time.Duration{
		10 * time.Millisecond, // 0
		20 * time.Millisecond, // 1
		40 * time.Millisecond, // 2
		60 * time.Millisecond, // 3: 80ms capped
		60 * time.Millisecond, // 4: stays at cap
	}
	for attempt, w := range want {
		if d := b.Delay(attempt); d != w {
			t.Fatalf("Delay(%d) = %v, want %v", attempt, d, w)
		}
	}
	// A custom factor shifts the curve but respects the same cap.
	b.Factor = 3
	if d := b.Delay(1); d != 30*time.Millisecond {
		t.Fatalf("factor-3 Delay(1) = %v, want 30ms", d)
	}
	// Huge attempt counts must not overflow past the cap.
	if d := b.Delay(200); d != 60*time.Millisecond {
		t.Fatalf("Delay(200) = %v, want cap 60ms", d)
	}
}

// TestBackoffJitterBounds pins the jittered distribution: every draw lands
// in [d·(1−Jitter), d], the bounds are actually approached over many
// draws, and a seeded source replays the identical sequence.
func TestBackoffJitterBounds(t *testing.T) {
	const draws = 2000
	base := 100 * time.Millisecond
	rng := rand.New(rand.NewSource(42))
	b := Backoff{Base: base, Jitter: 0.5, Rand: rng.Float64}
	lo, hi := base, time.Duration(0)
	for i := 0; i < draws; i++ {
		d := b.Delay(0)
		if d < base/2 || d > base {
			t.Fatalf("draw %d: Delay(0) = %v outside [%v, %v]", i, d, base/2, base)
		}
		if d < lo {
			lo = d
		}
		if d > hi {
			hi = d
		}
	}
	// The spread must cover most of the allowed range, or the jitter is
	// decorative: with 2000 uniform draws the observed extremes sit within
	// 5% of each bound with overwhelming probability.
	if lo > base/2+base/20 {
		t.Fatalf("min draw %v never came near lower bound %v", lo, base/2)
	}
	if hi < base-base/20 {
		t.Fatalf("max draw %v never came near upper bound %v", hi, base)
	}
	// Same seed, same sequence: the deterministic-rand seam is what lets
	// controller runs replay bit-identically.
	a := Backoff{Base: base, Jitter: 0.5, Rand: rand.New(rand.NewSource(7)).Float64}
	c := Backoff{Base: base, Jitter: 0.5, Rand: rand.New(rand.NewSource(7)).Float64}
	for i := 0; i < 100; i++ {
		if da, dc := a.Delay(i%4), c.Delay(i%4); da != dc {
			t.Fatalf("seeded sequences diverge at draw %d: %v vs %v", i, da, dc)
		}
	}
}

func TestBackoffJitterClamped(t *testing.T) {
	// Jitter > 1 behaves as 1: delays land in [0, d], never negative.
	rng := rand.New(rand.NewSource(1))
	b := Backoff{Base: time.Millisecond, Jitter: 5, Rand: rng.Float64}
	for i := 0; i < 100; i++ {
		d := b.Delay(0)
		if d < 0 || d > time.Millisecond {
			t.Fatalf("over-jittered delay %v outside [0, 1ms]", d)
		}
	}
}
