package core

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/crypt"
	"repro/internal/wire"
)

// VerifierServer exposes a verifier device to remote TPAs: it accepts
// audit-request frames, runs the timed rounds against its prover
// connection, and returns the signed transcript. This is the third leg
// that makes the deployment fully distributed (TPA, verifier and prover
// each on their own host), matching the paper's Fig. 4 architecture.
type VerifierServer struct {
	Verifier *Verifier
	// DialProver opens the device's channel to the prover for one audit.
	// Audits run sequentially per connection, so the prover link is
	// re-established per request — the initialisation phase is not time
	// critical (§III-A).
	DialProver func() (ProverConn, error)
	// BatchSigner, when set, offers wire.FeatureBatchSign: TPA
	// connections that negotiate it receive batch-attested transcripts
	// (one root signature amortized over many audits) instead of
	// per-transcript signatures. Connections that never send a Hello —
	// old TPAs — keep the per-transcript path untouched.
	BatchSigner *crypt.BatchSigner

	mu     sync.Mutex
	closed bool
	lis    net.Listener
	wg     sync.WaitGroup
}

// Serve accepts TPA connections until the listener closes.
func (s *VerifierServer) Serve(lis net.Listener) error {
	s.mu.Lock()
	s.lis = lis
	s.mu.Unlock()
	for {
		conn, err := lis.Accept()
		if err != nil {
			s.wg.Wait()
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Close stops accepting TPA connections.
func (s *VerifierServer) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.lis != nil {
		return s.lis.Close()
	}
	return nil
}

func (s *VerifierServer) handle(conn net.Conn) {
	defer conn.Close()
	// The per-connection verifier: swapped for a batch-signing copy when
	// the TPA negotiates wire.FeatureBatchSign.
	v := s.Verifier
	for {
		typ, payload, err := wire.ReadFrame(conn)
		if err != nil {
			return
		}
		switch typ {
		case wire.TypePing:
			if err := wire.WriteFrame(conn, wire.TypePong, nil); err != nil {
				return
			}
		case wire.TypeHello:
			// Feature negotiation on the TPA leg. Framing stays serial v1
			// (Version 1 in the ack) — unlike the prover leg, a Hello here
			// never upgrades to mux, it only switches the attestation form.
			hello, err := wire.DecodeHello(payload)
			if err != nil {
				if werr := wire.WriteFrame(conn, wire.TypeError, wire.ErrorMessage{Msg: err.Error()}.Encode()); werr != nil {
					return
				}
				continue
			}
			var features uint32
			if s.BatchSigner != nil && hello.Features&wire.FeatureBatchSign != 0 {
				features |= wire.FeatureBatchSign
				v = s.Verifier.WithBatchSigner(s.BatchSigner)
			} else {
				v = s.Verifier
			}
			if err := wire.WriteFrame(conn, wire.TypeHelloAck, wire.HelloAck{Version: 1, Features: features}.Encode()); err != nil {
				return
			}
		case wire.TypeAuditRequest:
			req, err := DecodeAuditRequest(payload)
			if err != nil {
				if werr := wire.WriteFrame(conn, wire.TypeError, wire.ErrorMessage{Msg: err.Error()}.Encode()); werr != nil {
					return
				}
				continue
			}
			st, err := s.runOne(v, req)
			if err != nil {
				if werr := wire.WriteFrame(conn, wire.TypeError, wire.ErrorMessage{Msg: err.Error()}.Encode()); werr != nil {
					return
				}
				continue
			}
			if err := wire.WriteFrame(conn, wire.TypeSignedTranscript, EncodeSignedTranscript(st)); err != nil {
				return
			}
		default:
			if err := wire.WriteFrame(conn, wire.TypeError, wire.ErrorMessage{Msg: "unknown frame type"}.Encode()); err != nil {
				return
			}
		}
	}
}

func (s *VerifierServer) runOne(v *Verifier, req AuditRequest) (SignedTranscript, error) {
	pc, err := s.DialProver()
	if err != nil {
		return SignedTranscript{}, fmt.Errorf("dial prover: %w", err)
	}
	if closer, ok := pc.(interface{ Close() error }); ok {
		defer closer.Close()
	}
	// The daemon's own deadline discipline is the TPA connection's; the
	// audit itself runs uncancelled here.
	return v.RunAudit(context.Background(), req, pc)
}

// RemoteVerifier is the TPA-side client of a VerifierServer.
type RemoteVerifier struct {
	conn     net.Conn
	features uint32
	// desynced latches when a cancelled context abandoned an audit
	// mid-exchange; see ErrConnDesynced.
	desynced atomic.Bool
}

// DialVerifier connects to a verifier daemon and probes its feature set
// with a v1-framed Hello. A new daemon answers HelloAck with the
// features it granted (batch attestation, when it runs a BatchSigner);
// an old daemon answers its usual unknown-frame TypeError and the
// connection proceeds feature-less — zero-config fallback in both
// directions, mirroring the prover-leg mux negotiation.
func DialVerifier(addr string, timeout time.Duration) (*RemoteVerifier, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("dial verifier: %w", err)
	}
	r := &RemoteVerifier{conn: conn}
	if timeout > 0 {
		_ = conn.SetDeadline(time.Now().Add(timeout))
	}
	hello := wire.Hello{MaxVersion: 1, Features: wire.FeatureBatchSign}
	if err := wire.WriteFrame(conn, wire.TypeHello, hello.Encode()); err != nil {
		conn.Close()
		return nil, fmt.Errorf("verifier hello: %w", err)
	}
	typ, payload, err := wire.ReadFrame(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("verifier hello: %w", err)
	}
	if typ == wire.TypeHelloAck {
		ack, err := wire.DecodeHelloAck(payload)
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("verifier hello: %w", err)
		}
		r.features = ack.Features
	}
	// Any other reply (an old daemon's TypeError) means no features.
	_ = conn.SetDeadline(time.Time{})
	return r, nil
}

// BatchSign reports whether the daemon granted batch attestation.
func (r *RemoteVerifier) BatchSign() bool { return r.features&wire.FeatureBatchSign != 0 }

// Close closes the TPA↔verifier connection.
func (r *RemoteVerifier) Close() error { return r.conn.Close() }

// Healthy reports whether the connection can still carry audits — false
// once a cancelled audit desynced the framing. VerifierPool uses it to
// decide between reuse and redial.
func (r *RemoteVerifier) Healthy() bool { return !r.desynced.Load() }

// SetDeadline bounds all future reads and writes on the connection; see
// TCPProverConn.SetDeadline.
func (r *RemoteVerifier) SetDeadline(t time.Time) error { return r.conn.SetDeadline(t) }

// RunAudit submits the request and waits for the signed transcript.
// Cancelling ctx pokes the connection deadline so a daemon that stops
// responding cannot strand the caller.
func (r *RemoteVerifier) RunAudit(ctx context.Context, req AuditRequest) (SignedTranscript, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return SignedTranscript{}, err
	}
	if r.desynced.Load() {
		return SignedTranscript{}, ErrConnDesynced
	}
	disarm := pokeOnCancel(ctx, r.conn)
	defer func() {
		if disarm() {
			r.desynced.Store(true)
		}
	}()
	if err := wire.WriteFrame(r.conn, wire.TypeAuditRequest, EncodeAuditRequest(req)); err != nil {
		return SignedTranscript{}, fmt.Errorf("send request: %w", err)
	}
	typ, payload, err := wire.ReadFrame(r.conn)
	if err != nil {
		return SignedTranscript{}, fmt.Errorf("read response: %w", err)
	}
	switch typ {
	case wire.TypeSignedTranscript:
		return DecodeSignedTranscript(payload)
	case wire.TypeError:
		return SignedTranscript{}, wire.DecodeErrorMessage(payload)
	default:
		return SignedTranscript{}, fmt.Errorf("core: unexpected frame type %d", typ)
	}
}
