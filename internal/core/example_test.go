package core_test

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/crypt"
	"repro/internal/disk"
	"repro/internal/geo"
	"repro/internal/gps"
	"repro/internal/por"
	"repro/internal/simnet"
	"repro/internal/vclock"
)

// ExampleTPA_VerifyAudit runs one complete GeoProof audit over the
// simulated network — owner encodes, provider stores, the GPS-enabled
// verifier device times the challenge rounds on the virtual clock, and
// the TPA checks signature, position, MACs and the Δt_max bound.
func ExampleTPA_VerifyAudit() {
	// Owner prepares the file.
	owner := por.NewEncoder(bytes.Repeat([]byte{0x42}, 32)).WithConcurrency(1)
	encoded, err := owner.Encode("tenant-1/records.db", make([]byte, 8192))
	if err != nil {
		fmt.Println(err)
		return
	}

	// Provider stores it at the contracted Brisbane site.
	site := cloud.NewSite(cloud.DataCenter{
		Name: "bne-dc1", Position: geo.Brisbane, Disk: disk.WD2500JD,
	}, 1)
	site.Store(encoded.FileID, encoded.Layout, encoded.Data)

	// Verifier device in the provider's LAN, on the simulation's clock.
	clk := vclock.NewVirtual(time.Time{})
	net := simnet.New(clk, 42)
	net.AddNode("verifier", geo.Brisbane, nil)
	net.AddNode("prover", geo.Brisbane, core.ProviderHandler(&cloud.HonestProvider{Site: site}))
	net.SetLink("verifier", "prover", simnet.LANLink{
		DistanceKm: 0.5, Switches: 3,
		PerSwitch: 30 * time.Microsecond, Base: 100 * time.Microsecond,
	})
	signer, err := crypt.NewSigner()
	if err != nil {
		fmt.Println(err)
		return
	}
	verifier, err := core.NewVerifier(signer, &gps.Receiver{True: geo.Brisbane}, clk)
	if err != nil {
		fmt.Println(err)
		return
	}

	// The TPA opens a 10-round audit under the paper's 16 ms policy and
	// verifies the signed transcript.
	tpa, err := core.NewTPA(owner, signer.Public(),
		core.DefaultPolicy(cloud.SLA{Center: geo.Brisbane, RadiusKm: 100}))
	if err != nil {
		fmt.Println(err)
		return
	}
	req, err := tpa.NewRequest(encoded.FileID, encoded.Layout, 10)
	if err != nil {
		fmt.Println(err)
		return
	}
	st, err := verifier.RunAudit(context.Background(), req, &core.SimProverConn{Net: net, Verifier: "verifier", Prover: "prover"})
	if err != nil {
		fmt.Println(err)
		return
	}
	rep := tpa.VerifyAudit(req, encoded.Layout, st)

	fmt.Println("signature OK:", rep.SignatureOK)
	fmt.Println("position OK:", rep.PositionOK)
	fmt.Printf("MACs OK: %v (%d segments)\n", rep.MACsOK, rep.SegmentsOK)
	fmt.Println("timing OK:", rep.TimingOK)
	fmt.Println("accepted:", rep.Accepted)

	// Output:
	// signature OK: true
	// position OK: true
	// MACs OK: true (10 segments)
	// timing OK: true
	// accepted: true
}
