package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/cloud"
	"repro/internal/simnet"
)

// segmentReq is the simulated-network request payload.
type segmentReq struct {
	fileID string
	index  uint64
}

// segmentResp is the simulated-network response payload.
type segmentResp struct {
	data []byte
	err  error
}

// SimProverConn carries GetSegment over a simnet.Network between the
// verifier's node and the prover's node. The network advances the shared
// virtual clock through propagation and service time, so the verifier's
// timing measurements come out exactly as the latency models dictate.
type SimProverConn struct {
	Net      *simnet.Network
	Verifier string // verifier node name
	Prover   string // prover node name
}

var _ ProverConn = (*SimProverConn)(nil)

// GetSegment performs one timed round over the simulated network. The
// simulator is synchronous compute on a virtual clock, so cancellation is
// honoured at round granularity: a cancelled ctx fails the round before
// any virtual time is spent.
func (c *SimProverConn) GetSegment(ctx context.Context, fileID string, index uint64) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	resp, _, err := c.Net.RoundTrip(c.Verifier, c.Prover, segmentReq{fileID: fileID, index: index})
	if err != nil {
		return nil, fmt.Errorf("simnet round trip: %w", err)
	}
	sr, ok := resp.(segmentResp)
	if !ok {
		return nil, errors.New("core: unexpected simnet response type")
	}
	if sr.err != nil {
		return nil, sr.err
	}
	return sr.data, nil
}

// ProviderHandler adapts a cloud.Provider into a simnet node handler: the
// provider's service latency (disk look-up, plus internal relaying for
// cheats) becomes the node's service time.
func ProviderHandler(p cloud.Provider) simnet.Handler {
	return func(req any) (any, time.Duration) {
		r, ok := req.(segmentReq)
		if !ok {
			return segmentResp{err: errors.New("core: bad request type")}, 0
		}
		data, lookup, err := p.FetchSegment(r.fileID, int64(r.index))
		if err != nil {
			return segmentResp{err: err}, 0
		}
		return segmentResp{data: data}, lookup
	}
}
