// Package core implements the GeoProof protocol itself — the paper's
// primary contribution (§V): a proof-of-storage audit whose challenge-
// response rounds are individually timed by a trusted, GPS-enabled
// verifier device inside the provider's LAN, so that a third-party
// auditor can conclude the data physically resides near the contracted
// location.
//
// Roles:
//
//   - Owner (por.Encoder): prepares the file per §V-A and holds the master
//     secret.
//   - Verifier device V (Verifier): tamper-proof, GPS-enabled, sits in the
//     provider's LAN; runs the timed rounds and signs the transcript.
//   - Prover P: the cloud provider serving segments (cloud.Provider behind
//     a ProverConn transport).
//   - TPA A (TPA): drives audits through V, verifies signature, GPS
//     position, segment MACs and the per-round time bound Δt_max.
//
// # Transports
//
// The verifier reaches the prover through the ProverConn interface, with
// three implementations: SimProverConn rides the deterministic simulated
// network (simnet, virtual clock); TCPProverConn speaks the serial v1
// wire framing against a live ProverServer (cmd/geoproofd); and
// MuxProverConn speaks the multiplexed v2 framing (internal/wire/doc.go)
// negotiated on the same port — many concurrent audit streams per
// connection, each audit's k challenges pipelined in one flush
// (BatchProverConn), per-stream cancellation that never poisons sibling
// streams. ProverPool keeps negotiated connections warm per address
// (sharing mux conns, falling back to exclusive checkout for v1-only
// provers), and VerifierServer and RemoteVerifier add the third leg — a
// TPA talking to a remote verifier daemon (cmd/geoverifierd), with
// VerifierPool reusing daemon connections — making the deployment fully
// distributed as in the paper's Fig. 4.
//
// # Multi-tenant audit scheduling
//
// One verified transcript is VerifyAudit; one auditor sweeping a batch of
// transcripts is VerifyAudits. The Scheduler (sched.go) is the layer
// above both: it continuously drives whole audits — fresh nonce, timed
// rounds via an AuditRunner, verification, verdict — for many tenants
// against many provers, with a bounded in-flight window per prover,
// round-robin (optionally weighted) tenant fairness, per-attempt timeouts
// and bounded retries; ProverPolicy layers per-prover overrides of those
// knobs over the fleet defaults. Verdicts aggregate in an AuditLedger
// keyed by (tenant, prover, epoch). The same scheduler runs over every
// transport via the AuditRunner implementations: LocalRunner (in-process,
// simnet or a fixed connection), DialProverRunner (local verifier, TCP
// dial per audit), PooledRunner (local verifier, warm multiplexed conns
// from a ProverPool) and RemoteRunner (remote verifier daemon, optionally
// pooled via VerifierPool).
//
// # Transcript attestation
//
// A SignedTranscript carries one of two attestation forms (Mode). The
// classic form is a per-transcript ECDSA signature over the canonical
// transcript bytes. The amortized form (BatchAttestation, produced by a
// Verifier configured WithBatchSigner) replaces it with a signature
// over a Merkle root covering a whole window of concurrent audits plus
// this transcript's inclusion proof — same trust argument, one
// asymmetric signature per window instead of per audit (see
// crypt/doc.go). Verification mirrors that split: the TPA verifies each
// distinct root's signature once (a small LRU of verified roots makes
// the rest of the window cache hits, and VerifyAudits groups jobs by
// root even past the cache) and then checks one SHA-256 inclusion path
// per transcript. Everything downstream of step 1 — position, MACs,
// min-RTT timing, rejection semantics — is identical in both modes, and
// each Report and LedgerEntry records which attestation mode vouched
// for the verdict.
//
// Batch attestation is feature-negotiated on the TPA→verifier-daemon
// leg: DialVerifier opens with a Hello advertising FeatureBatchSign,
// a daemon running a BatchSigner acks it, and anything else (an old
// daemon, a daemon without -batchsign) falls back to per-transcript
// signatures — old TPAs and old daemons interoperate unchanged.
//
// # Fleet control plane
//
// The FleetController (fleet.go) closes the loop the Scheduler leaves
// open: instead of a caller handing RunEpoch a static task list, the
// controller owns a dynamic prover registry (Register/Deregister at
// runtime, graceful draining of in-flight audits before a prover's
// state is torn down) and reconciles desired state against observed
// health. Between full audits it runs cheap liveness probes (PoolProbe
// borrows a warm pooled conn and pings), and it re-audits every prover
// continuously on a per-prover jittered period. Each prover walks a
// health state machine:
//
//	          cycle failures ≥ SuspectAfter,
//	          or probe failures ≥ ProbeSuspectAfter
//	Healthy ────────────────────────────────────▶ Suspect
//	  ▲                                             │
//	  │ cycle passes                                │ failures while
//	  │ (policy restored)                           │ suspect ≥ QuarantineAfter
//	  │                                             ▼
//	  │      ProbationAudits consecutive      Quarantined ──▶ Evicted
//	  │      probation passes                       │   (quarantine entries
//	Probation ◀─────────────────────────────────────┘    ≥ EvictAfter)
//	  │              quarantine backoff expired
//	  └──▶ back to Quarantined on any probation failure
//
// A suspect prover is audited under an escalated ProverPolicy (serial
// window, scaled-down timeout, bounded retries) with more rounds per
// audit; a quarantined prover receives no audits at all until an
// exponential backoff with jitter re-admits it to probation, where
// single rotating-task audits decide between full recovery and
// re-quarantine. Every decision runs on the vclock.Clock seam with
// per-prover seeded randomness, so a controller scenario on the
// virtual clock replays bit-identically — the Synchronous mode runs
// due work inline on Tick in deterministic order for exactly that.
// Status() snapshots the whole fleet (health, policies, counters,
// ledger totals) for the JSON status API served by geoverifierd
// -controller, and RetainEpochs bounds ledger memory by folding old
// epochs into per-pair archive cells (AuditLedger.CompactBefore) as
// the controller ticks.
//
// # Cancellation
//
// A context.Context threads the whole audit path — RunEpoch →
// AuditRunner.RunAudit → Verifier.RunAudit → ProverConn.GetSegment — so
// a timed-out attempt is cancelled, not abandoned: the scheduler cancels
// the attempt's context when it frees the window slot, ctx-aware
// transports poke their I/O deadline to unblock reads in flight, and the
// attempt's goroutine unwinds instead of leaking against a hung prover.
package core
