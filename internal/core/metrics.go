package core

// This file registers every core-layer metric family into the
// process-wide telemetry registry. Families live in package variables
// and hot-path label children are resolved once here, so the audit
// path's cost per event is a single atomic add (see the telemetry
// package's hot-path cost contract). Nothing in this file touches the
// clock: durations are handed in by callers that already hold one from
// their injected vclock.Clock.

import "repro/internal/telemetry"

var (
	// Scheduler: verdict classes, latency, retries, timeouts and window
	// occupancy.
	metricVerdicts = telemetry.Default.CounterVec(
		"geoproof_sched_verdicts_total",
		"Scheduled audit verdicts by outcome class.", "outcome")
	metricVerdictAccepted = metricVerdicts.With(OutcomeAccepted.String())
	metricVerdictRejected = metricVerdicts.With(OutcomeRejected.String())
	metricVerdictTimeout  = metricVerdicts.With(OutcomeTimeout.String())
	metricVerdictError    = metricVerdicts.With(OutcomeError.String())
	metricAuditSeconds    = telemetry.Default.DurationHistogram(
		"geoproof_sched_audit_seconds",
		"End-to-end scheduled audit latency, dispatch to verdict.")
	metricRetries = telemetry.Default.Counter(
		"geoproof_sched_retries_total",
		"Audit attempts re-dispatched after a transport failure or timeout.")
	metricAttemptTimeouts = telemetry.Default.Counter(
		"geoproof_sched_attempt_timeouts_total",
		"Audit attempts abandoned at the per-attempt deadline.")
	metricInflight = telemetry.Default.Gauge(
		"geoproof_sched_inflight_audits",
		"Audits currently holding a prover in-flight window slot.")

	// ProverPool: dial churn and reuse. Hit rate = 1 - dials/gets.
	metricPoolGets = telemetry.Default.Counter(
		"geoproof_pool_gets_total",
		"Prover connections borrowed from the pool.")
	metricPoolDials = telemetry.Default.Counter(
		"geoproof_pool_dials_total",
		"Prover connections dialed by the pool (cold misses and redials).")
	metricPoolEvictions = telemetry.Default.Counter(
		"geoproof_pool_evictions_total",
		"Addresses evicted from the pool (departed or quarantined provers).")

	// Mux transport, verifier side.
	metricMuxFramesWritten = telemetry.Default.Counter(
		"geoproof_mux_frames_written_total",
		"Frames written on multiplexed prover connections.")
	metricMuxFramesRead = telemetry.Default.Counter(
		"geoproof_mux_frames_read_total",
		"Frames read on multiplexed prover connections.")
	metricMuxStreamAborts = telemetry.Default.Counter(
		"geoproof_mux_stream_aborts_total",
		"Per-stream aborts received on multiplexed prover connections.")
	metricMuxV1Fallbacks = telemetry.Default.Counter(
		"geoproof_mux_v1_fallbacks_total",
		"Negotiations that fell back to the serial v1 transport.")

	// Prover server side (geoproofd).
	metricProverConns = telemetry.Default.CounterVec(
		"geoproof_prover_conns_total",
		"Accepted verifier connections by negotiated protocol.", "proto")
	metricProverConnsMux = metricProverConns.With("mux")
	metricProverConnsV1  = metricProverConns.With("v1")
	metricProverRequests = telemetry.Default.CounterVec(
		"geoproof_prover_requests_total",
		"Requests served by the prover, by type.", "type")
	metricProverPings    = metricProverRequests.With("ping")
	metricProverSegments = metricProverRequests.With("segment")
	metricProverBatches  = metricProverRequests.With("batch")
	metricProverAborts   = telemetry.Default.Counter(
		"geoproof_prover_stream_aborts_total",
		"Streams the prover aborted with an error frame.")

	// Fleet controller health machine.
	metricFleetTransitions = telemetry.Default.CounterVec(
		"geoproof_fleet_transitions_total",
		"Prover health-state transitions, labeled by the state entered.", "to")
	metricFleetProbeSeconds = telemetry.Default.DurationHistogram(
		"geoproof_fleet_probe_rtt_seconds",
		"Liveness-probe round-trip time for successful probes.")
	metricFleetProbeFailures = telemetry.Default.Counter(
		"geoproof_fleet_probe_failures_total",
		"Liveness probes that returned an error.")
	metricFleetQuarantineSeconds = telemetry.Default.DurationHistogram(
		"geoproof_fleet_quarantine_seconds",
		"Time provers spent quarantined, observed on leaving the state.")
)
