package core

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/cloud"
	"repro/internal/crypt"
	"repro/internal/geo"
	"repro/internal/gps"
)

func TestProverPoolSharesMuxConn(t *testing.T) {
	_, ef, site := tcpFixture(t)
	addr, stop := startServer(t, &cloud.HonestProvider{Site: site}, false)
	defer stop()
	pool := &ProverPool{DialTimeout: time.Second}
	defer pool.Close()

	// Many sequential and concurrent borrows must all ride one dial.
	var wg sync.WaitGroup
	errs := make(chan error, 24)
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, release, err := pool.Get(addr)
			if err != nil {
				errs <- err
				return
			}
			_, err = conn.GetSegment(context.Background(), ef.FileID, uint64(i%int(ef.Layout.Segments)))
			release(err)
			if err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if d := pool.Dials(); d != 1 {
		t.Fatalf("pool dialed %d times, want 1", d)
	}
}

func TestProverPoolRedialsAfterConnDeath(t *testing.T) {
	_, ef, site := tcpFixture(t)
	addr, stop := startServer(t, &cloud.HonestProvider{Site: site}, false)
	defer stop()
	pool := &ProverPool{DialTimeout: time.Second}
	defer pool.Close()

	conn, release, err := pool.Get(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.GetSegment(context.Background(), ef.FileID, 0); err != nil {
		t.Fatal(err)
	}
	// Kill the pooled connection out from under the pool.
	conn.Close()
	release(nil)

	// The next borrow must health-check, discard the dead conn and
	// redial transparently.
	conn2, release2, err := pool.Get(addr)
	if err != nil {
		t.Fatal(err)
	}
	seg, err := conn2.GetSegment(context.Background(), ef.FileID, 1)
	release2(err)
	if err != nil {
		t.Fatal(err)
	}
	if len(seg) != ef.Layout.SegmentSize() {
		t.Fatalf("segment size %d", len(seg))
	}
	if d := pool.Dials(); d != 2 {
		t.Fatalf("pool dialed %d times, want 2", d)
	}
}

func TestProverPoolV1ExclusiveCheckout(t *testing.T) {
	// Against a legacy server the pool degrades to exclusive v1
	// checkout/checkin with reuse.
	_, ef, site := tcpFixture(t)
	addr, stop := legacyServer(t, &cloud.HonestProvider{Site: site})
	defer stop()
	pool := &ProverPool{DialTimeout: time.Second}
	defer pool.Close()

	for i := 0; i < 5; i++ {
		conn, release, err := pool.Get(addr)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := conn.(*TCPProverConn); !ok {
			t.Fatalf("borrowed %T, want *TCPProverConn", conn)
		}
		_, err = conn.GetSegment(context.Background(), ef.FileID, 0)
		release(err)
		if err != nil {
			t.Fatal(err)
		}
	}
	// Serial borrows reuse the single checked-in conn: one dial total
	// (negotiation probe included).
	if d := pool.Dials(); d != 1 {
		t.Fatalf("pool dialed %d times, want 1", d)
	}

	// Two simultaneous checkouts need a second conn.
	c1, r1, err := pool.Get(addr)
	if err != nil {
		t.Fatal(err)
	}
	c2, r2, err := pool.Get(addr)
	if err != nil {
		t.Fatal(err)
	}
	if c1 == c2 {
		t.Fatal("same exclusive conn checked out twice")
	}
	r1(nil)
	r2(nil)
	if d := pool.Dials(); d != 2 {
		t.Fatalf("pool dialed %d times, want 2", d)
	}
}

func TestProverPoolEvictClosesWarmConns(t *testing.T) {
	_, ef, site := tcpFixture(t)
	addr, stop := startServer(t, &cloud.HonestProvider{Site: site}, false)
	defer stop()
	pool := &ProverPool{DialTimeout: time.Second}
	defer pool.Close()

	conn, release, err := pool.Get(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.GetSegment(context.Background(), ef.FileID, 0); err != nil {
		t.Fatal(err)
	}
	release(nil)
	if !conn.Healthy() {
		t.Fatal("warm conn unhealthy before eviction")
	}

	// Eviction must close the warm shared conn promptly — not leave it to
	// fail a later health-checked reuse.
	pool.Evict(addr)
	if conn.Healthy() {
		t.Fatal("evicted conn still reports healthy: it was not closed")
	}
	if _, err := conn.GetSegment(context.Background(), ef.FileID, 0); err == nil {
		t.Fatal("GetSegment on evicted conn succeeded")
	}

	// The address is not poisoned: the next borrow dials fresh.
	conn2, release2, err := pool.Get(addr)
	if err != nil {
		t.Fatal(err)
	}
	_, err = conn2.GetSegment(context.Background(), ef.FileID, 1)
	release2(err)
	if err != nil {
		t.Fatal(err)
	}
	if d := pool.Dials(); d != 2 {
		t.Fatalf("pool dialed %d times, want 2 (one before, one after eviction)", d)
	}
}

func TestProverPoolEvictV1CheckedOut(t *testing.T) {
	// A v1 conn checked out across an eviction must be closed on release,
	// not returned to the orphaned idle list.
	_, ef, site := tcpFixture(t)
	addr, stop := legacyServer(t, &cloud.HonestProvider{Site: site})
	defer stop()
	pool := &ProverPool{DialTimeout: time.Second}
	defer pool.Close()

	idleConn, idleRelease, err := pool.Get(addr)
	if err != nil {
		t.Fatal(err)
	}
	heldConn, heldRelease, err := pool.Get(addr)
	if err != nil {
		t.Fatal(err)
	}
	idleRelease(nil) // back on the idle list before the eviction

	pool.Evict(addr)
	// v1 conns track desync, not closedness, so probe with an exchange:
	// the idle conn's socket must be gone, the held one's still live.
	if _, err := idleConn.GetSegment(context.Background(), ef.FileID, 0); err == nil {
		t.Fatal("idle v1 conn not closed by eviction")
	}
	if _, err := heldConn.GetSegment(context.Background(), ef.FileID, 0); err != nil {
		t.Fatalf("checked-out conn broken before release: %v", err)
	}
	heldRelease(nil)
	// Clean release after eviction closes rather than re-idles.
	if _, err := heldConn.GetSegment(context.Background(), ef.FileID, 0); err == nil {
		t.Fatal("conn released after eviction was not closed")
	}
	if d := pool.Dials(); d != 2 {
		t.Fatalf("pool dialed %d times, want 2", d)
	}
}

func TestProverPoolClosedGetFails(t *testing.T) {
	pool := &ProverPool{}
	pool.Close()
	if _, _, err := pool.Get("127.0.0.1:1"); err == nil {
		t.Fatal("Get on closed pool succeeded")
	}
}

func TestPooledRunnerWithScheduler(t *testing.T) {
	// End-to-end: the scheduler drives concurrent audits through a
	// PooledRunner; every audit shares the pool's warm mux connection.
	enc, ef, site := tcpFixture(t)
	addr, stop := startServer(t, &cloud.HonestProvider{Site: site}, false)
	defer stop()
	pool := &ProverPool{DialTimeout: time.Second}
	defer pool.Close()

	signer, _ := crypt.NewSigner()
	verifier, err := NewVerifier(signer, &gps.Receiver{True: geo.Brisbane}, nil)
	if err != nil {
		t.Fatal(err)
	}
	policy := DefaultPolicy(cloud.SLA{Center: geo.Brisbane, RadiusKm: 100})
	policy.TMax = time.Second
	tpa, err := NewTPA(enc, signer.Public(), policy)
	if err != nil {
		t.Fatal(err)
	}
	sched := NewScheduler(SchedulerConfig{Workers: 4, ProverWindow: 4, Timeout: 5 * time.Second})
	sched.RegisterTenant("acme", tpa)
	sched.RegisterProver("dc", &PooledRunner{Verifier: verifier, Addr: addr, Pool: pool})

	tasks := make([]AuditTask, 12)
	for i := range tasks {
		tasks[i] = AuditTask{Tenant: "acme", Prover: "dc", FileID: ef.FileID, Layout: ef.Layout, K: 8}
	}
	verdicts := sched.RunEpoch(context.Background(), tasks)
	for i, v := range verdicts {
		if v.Outcome != OutcomeAccepted {
			t.Fatalf("verdict %d: %s (%s)", i, v.Outcome, v.Err)
		}
	}
	if d := pool.Dials(); d != 1 {
		t.Fatalf("12 scheduled audits dialed %d times, want 1", d)
	}
}

func TestVerifierPoolReusesDaemonConns(t *testing.T) {
	enc, ef, site := tcpFixture(t)
	paddr, pstop := startServer(t, &cloud.HonestProvider{Site: site}, false)
	defer pstop()

	signer, _ := crypt.NewSigner()
	verifier, err := NewVerifier(signer, &gps.Receiver{True: geo.Brisbane}, nil)
	if err != nil {
		t.Fatal(err)
	}
	vs := &VerifierServer{
		Verifier:   verifier,
		DialProver: func() (ProverConn, error) { return DialMuxProver(paddr, time.Second) },
	}
	vlis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go vs.Serve(vlis)
	defer vs.Close()
	vaddr := vlis.Addr().String()

	policy := DefaultPolicy(cloud.SLA{Center: geo.Brisbane, RadiusKm: 100})
	policy.TMax = time.Second
	tpa, err := NewTPA(enc, signer.Public(), policy)
	if err != nil {
		t.Fatal(err)
	}

	vpool := &VerifierPool{DialTimeout: time.Second}
	defer vpool.Close()
	runner := &RemoteRunner{Addr: vaddr, Pool: vpool, AttemptTimeout: 5 * time.Second}
	for i := 0; i < 5; i++ {
		req, err := tpa.NewRequest(ef.FileID, ef.Layout, 6)
		if err != nil {
			t.Fatal(err)
		}
		st, err := runner.RunAudit(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if rep := tpa.VerifyAudit(req, ef.Layout, st); !rep.Accepted {
			t.Fatalf("audit %d rejected: %s", i, rep.Reason())
		}
	}
	if d := vpool.Dials(); d != 1 {
		t.Fatalf("5 serial remote audits dialed %d daemon conns, want 1", d)
	}
}
