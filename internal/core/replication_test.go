package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/cloud"
	"repro/internal/crypt"
	"repro/internal/disk"
	"repro/internal/geo"
	"repro/internal/gps"
	"repro/internal/por"
	"repro/internal/simnet"
	"repro/internal/vclock"
)

// replicaDeployment builds one replica site with its own verifier and
// TPA in the given city.
func replicaDeployment(t *testing.T, enc *por.Encoder, ef *por.EncodedFile, name string, pos geo.Position, seed int64) ReplicaTarget {
	t.Helper()
	site := cloud.NewSite(cloud.DataCenter{Name: name, Position: pos, Disk: disk.WD2500JD}, seed)
	site.Store(ef.FileID, ef.Layout, ef.Data)

	clk := vclock.NewVirtual(time.Time{})
	net := simnet.New(clk, seed)
	net.AddNode("verifier", pos, nil)
	net.AddNode("prover", pos, ProviderHandler(&cloud.HonestProvider{Site: site}))
	net.SetLink("verifier", "prover", simnet.LANLink{
		DistanceKm: 0.5, Switches: 3,
		PerSwitch: 30 * time.Microsecond, Base: 100 * time.Microsecond,
	})
	signer, err := crypt.NewSigner()
	if err != nil {
		t.Fatal(err)
	}
	verifier, err := NewVerifier(signer, &gps.Receiver{True: pos}, clk)
	if err != nil {
		t.Fatal(err)
	}
	tpa, err := NewTPA(enc, signer.Public(), DefaultPolicy(cloud.SLA{Center: pos, RadiusKm: 100}))
	if err != nil {
		t.Fatal(err)
	}
	return ReplicaTarget{
		Name:     name,
		Verifier: verifier,
		Conn:     &SimProverConn{Net: net, Verifier: "verifier", Prover: "prover"},
		TPA:      tpa,
	}
}

func TestReplicationAuditDiverseReplicasAccepted(t *testing.T) {
	enc, ef := encodeTestFile(t)
	targets := []ReplicaTarget{
		replicaDeployment(t, enc, ef, "bne", geo.Brisbane, 1),
		replicaDeployment(t, enc, ef, "syd", geo.Sydney, 2),
		replicaDeployment(t, enc, ef, "per", geo.Perth, 3),
	}
	rep, err := AuditReplicas(context.Background(), testFileID, ef.Layout, targets, 10, 500)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Accepted() {
		t.Fatalf("diverse replicas rejected: %v", rep.Reasons)
	}
	if len(rep.Results) != 3 {
		t.Fatalf("%d results", len(rep.Results))
	}
	// Brisbane-Sydney ≈ 730 km is the closest pair.
	if rep.MinPairKm < 600 || rep.MinPairKm > 900 {
		t.Fatalf("min pair %.0f km", rep.MinPairKm)
	}
}

func TestReplicationAuditCoLocatedReplicasFailDiversity(t *testing.T) {
	enc, ef := encodeTestFile(t)
	targets := []ReplicaTarget{
		replicaDeployment(t, enc, ef, "bne-1", geo.Brisbane, 4),
		replicaDeployment(t, enc, ef, "bne-2", geo.Brisbane, 5),
	}
	rep, err := AuditReplicas(context.Background(), testFileID, ef.Layout, targets, 5, 500)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted() || rep.DiversityOK {
		t.Fatal("co-located replicas passed the diversity check")
	}
	if !rep.AllAccepted {
		t.Fatal("individual audits should still pass")
	}
}

func TestReplicationAuditBadReplicaRejected(t *testing.T) {
	enc, ef := encodeTestFile(t)
	good := replicaDeployment(t, enc, ef, "bne", geo.Brisbane, 6)

	// The Sydney "replica" actually relays to Perth.
	remote := cloud.NewSite(cloud.DataCenter{Name: "per", Position: geo.Perth, Disk: disk.IBM36Z15}, 7)
	remote.Store(ef.FileID, ef.Layout, ef.Data)
	relay := cloud.NewRelayProvider(
		cloud.DataCenter{Name: "syd-front", Position: geo.Sydney, Disk: disk.WD2500JD},
		remote,
		simnet.InternetLink{DistanceKm: geo.Sydney.DistanceKm(geo.Perth), LastMile: simnet.DefaultLastMile},
		8,
	)
	clk := vclock.NewVirtual(time.Time{})
	net := simnet.New(clk, 9)
	net.AddNode("verifier", geo.Sydney, nil)
	net.AddNode("prover", geo.Sydney, ProviderHandler(relay))
	net.SetLink("verifier", "prover", simnet.LANLink{DistanceKm: 0.5, Switches: 3, PerSwitch: 30 * time.Microsecond, Base: 100 * time.Microsecond})
	signer, _ := crypt.NewSigner()
	verifier, _ := NewVerifier(signer, &gps.Receiver{True: geo.Sydney}, clk)
	tpa, _ := NewTPA(enc, signer.Public(), DefaultPolicy(cloud.SLA{Center: geo.Sydney, RadiusKm: 100}))
	bad := ReplicaTarget{Name: "syd", Verifier: verifier, Conn: &SimProverConn{Net: net, Verifier: "verifier", Prover: "prover"}, TPA: tpa}

	rep, err := AuditReplicas(context.Background(), testFileID, ef.Layout, []ReplicaTarget{good, bad}, 8, 500)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted() || rep.AllAccepted {
		t.Fatal("relaying replica accepted")
	}
}

func TestReplicationAuditNoTargets(t *testing.T) {
	_, ef := encodeTestFile(t)
	if _, err := AuditReplicas(context.Background(), testFileID, ef.Layout, nil, 5, 0); !errors.Is(err, ErrNoReplicas) {
		t.Fatalf("got %v", err)
	}
}

func TestCrossCheckPositionCatchesLie(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Device truly in Brisbane, claims Perth; auditors around the
	// country measure RTTs to the true position.
	var ms []gps.AuditorMeasurement
	for _, a := range []geo.Position{geo.Sydney, geo.Townsville, geo.Melbourne} {
		ms = append(ms, gps.MeasureFromAuditor(a, geo.Brisbane, simnet.DefaultLastMile, 0, rng))
	}
	rep := Report{Accepted: true, PositionOK: true}
	if err := CrossCheckPosition(&rep, geo.Perth, ms, 50); err != nil {
		t.Fatal(err)
	}
	if rep.Accepted || rep.PositionOK {
		t.Fatal("triangulation missed the position lie")
	}
	// Honest claim survives.
	rep2 := Report{Accepted: true, PositionOK: true}
	if err := CrossCheckPosition(&rep2, geo.Brisbane, ms, 50); err != nil {
		t.Fatal(err)
	}
	if !rep2.Accepted || !rep2.PositionOK {
		t.Fatal("triangulation rejected an honest claim")
	}
	if err := CrossCheckPosition(&rep2, geo.Brisbane, nil, 50); err == nil {
		t.Fatal("no-auditor cross check accepted")
	}
}

func TestAuditInterval(t *testing.T) {
	// 0.5% segment corruption, 100-round audits, 99% confidence within
	// 30 days: per-audit detection is 1-(0.995)^100 ≈ 0.394, so ~10
	// audits are needed → interval ≈ 3 days.
	iv, err := AuditInterval(30*24*time.Hour, 0.005, 100, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if iv < 2*24*time.Hour || iv > 4*24*time.Hour {
		t.Fatalf("interval %v", iv)
	}
	if _, err := AuditInterval(0, 0.005, 100, 0.99); err == nil {
		t.Fatal("zero horizon accepted")
	}
	if _, err := AuditInterval(time.Hour, 0.005, 100, 1.0); err == nil {
		t.Fatal("certainty accepted")
	}
	if _, err := AuditInterval(time.Hour, 0, 100, 0.9); err == nil {
		t.Fatal("zero corruption should be unreachable")
	}
}
