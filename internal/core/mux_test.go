package core

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/cloud"
	"repro/internal/crypt"
	"repro/internal/geo"
	"repro/internal/gps"
	"repro/internal/wire"
)

// dialMux connects to addr and requires the negotiation to land on the
// mux transport.
func dialMux(t *testing.T, addr string) *MuxProverConn {
	t.Helper()
	pc, err := DialMuxProver(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	mc, ok := pc.(*MuxProverConn)
	if !ok {
		pc.Close()
		t.Fatalf("negotiated %T, want *MuxProverConn", pc)
	}
	return mc
}

func TestMuxEndToEndAudit(t *testing.T) {
	enc, ef, site := tcpFixture(t)
	addr, stop := startServer(t, &cloud.HonestProvider{Site: site}, false)
	defer stop()
	conn := dialMux(t, addr)
	defer conn.Close()
	if conn.Features()&wire.FeatureBatch == 0 {
		t.Fatal("server did not ack the batch feature")
	}

	signer, _ := crypt.NewSigner()
	verifier, err := NewVerifier(signer, &gps.Receiver{True: geo.Brisbane}, nil)
	if err != nil {
		t.Fatal(err)
	}
	policy := DefaultPolicy(cloud.SLA{Center: geo.Brisbane, RadiusKm: 100})
	policy.TMax = 250 * time.Millisecond
	tpa, err := NewTPA(enc, signer.Public(), policy)
	if err != nil {
		t.Fatal(err)
	}
	req, err := tpa.NewRequest(ef.FileID, ef.Layout, 12)
	if err != nil {
		t.Fatal(err)
	}
	// The verifier must take the pipelined batch path automatically.
	st, err := verifier.RunAudit(context.Background(), req, conn)
	if err != nil {
		t.Fatal(err)
	}
	rep := tpa.VerifyAudit(req, ef.Layout, st)
	if !rep.Accepted {
		t.Fatalf("mux audit rejected: %s", rep.Reason())
	}
	if rep.SegmentsOK != 12 {
		t.Fatalf("segments ok %d", rep.SegmentsOK)
	}
	for i, r := range st.Transcript.Rounds {
		if r.RTT <= 0 {
			t.Fatalf("round %d RTT %v", i, r.RTT)
		}
	}
}

func TestMuxConcurrentStreamsOneConn(t *testing.T) {
	_, ef, site := tcpFixture(t)
	addr, stop := startServer(t, &cloud.HonestProvider{Site: site}, false)
	defer stop()
	conn := dialMux(t, addr)
	defer conn.Close()

	// Many goroutines exchange on the same connection; under -race this
	// also proves the demux bookkeeping is clean.
	const goroutines = 16
	const perG = 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				idx := uint64((g*perG + i) % int(ef.Layout.Segments))
				seg, err := conn.GetSegment(context.Background(), ef.FileID, idx)
				if err != nil {
					errs <- err
					return
				}
				if len(seg) != ef.Layout.SegmentSize() {
					errs <- errors.New("wrong segment size")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if !conn.Healthy() {
		t.Fatal("conn unhealthy after concurrent streams")
	}
}

// stallProvider delays one specific index long enough to outlive a
// cancelled context, leaving every other index fast.
type stallProvider struct {
	cloud.Provider
	stallIndex int64
	stall      time.Duration
}

func (p *stallProvider) FetchSegment(fileID string, i int64) ([]byte, time.Duration, error) {
	data, _, err := p.Provider.FetchSegment(fileID, i)
	if i == p.stallIndex {
		return data, p.stall, err
	}
	return data, 0, err
}

func TestMuxCancelledStreamDoesNotPoisonConn(t *testing.T) {
	_, ef, site := tcpFixture(t)
	prov := &stallProvider{
		Provider:   &cloud.HonestProvider{Site: site},
		stallIndex: 3,
		stall:      400 * time.Millisecond,
	}
	addr, stop := startServer(t, prov, true)
	defer stop()
	conn := dialMux(t, addr)
	defer conn.Close()

	// Stream A hits the stalled index and is cancelled mid-flight.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := conn.GetSegment(ctx, ef.FileID, 3)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stalled stream returned %v", err)
	}
	if el := time.Since(start); el > 300*time.Millisecond {
		t.Fatalf("cancelled stream took %v, not prompt", el)
	}

	// The defining mux property: the cancelled stream leaves the
	// connection and its sibling streams fully serviceable — no
	// whole-conn ErrConnDesynced latch as in the v1 transport.
	if !conn.Healthy() {
		t.Fatal("cancelled stream poisoned the connection")
	}
	if _, err := conn.GetSegment(context.Background(), ef.FileID, 0); err != nil {
		t.Fatalf("sibling exchange after cancellation: %v", err)
	}
	// Even once the stalled response finally lands (as a tombstoned late
	// frame), the connection keeps working.
	time.Sleep(500 * time.Millisecond)
	if !conn.Healthy() {
		t.Fatal("late tombstoned frame killed the connection")
	}
	if _, err := conn.GetSegment(context.Background(), ef.FileID, 1); err != nil {
		t.Fatalf("exchange after late frame: %v", err)
	}
}

func TestMuxBatchPerRoundFailure(t *testing.T) {
	_, ef, site := tcpFixture(t)
	addr, stop := startServer(t, &cloud.HonestProvider{Site: site}, false)
	defer stop()
	conn := dialMux(t, addr)
	defer conn.Close()

	// An out-of-range index fails its round; the rest of the batch must
	// still come back in order.
	indices := []uint64{0, uint64(ef.Layout.Segments) + 10, 1}
	results, err := conn.GetSegmentBatch(context.Background(), ef.FileID, indices)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("%d results", len(results))
	}
	if results[0].Failed || results[2].Failed {
		t.Fatal("healthy rounds marked failed")
	}
	if !results[1].Failed {
		t.Fatal("out-of-range round not marked failed")
	}
	if !conn.Healthy() {
		t.Fatal("per-round failure poisoned the connection")
	}
}

func TestMuxPingAndCancel(t *testing.T) {
	_, _, site := tcpFixture(t)
	addr, stop := startServer(t, &cloud.HonestProvider{Site: site}, false)
	defer stop()
	conn := dialMux(t, addr)
	defer conn.Close()
	rtt, err := conn.Ping(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rtt <= 0 || rtt > time.Second {
		t.Fatalf("ping rtt %v", rtt)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := conn.Ping(cancelled); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ping: %v", err)
	}
	// Unlike v1, a cancelled mux probe never desyncs the connection.
	if !conn.Healthy() {
		t.Fatal("cancelled ping poisoned mux conn")
	}
	if _, err := conn.Ping(context.Background()); err != nil {
		t.Fatalf("ping after cancel: %v", err)
	}
}

func TestMuxCloseFailsInflight(t *testing.T) {
	_, ef, site := tcpFixture(t)
	prov := &stallProvider{
		Provider:   &cloud.HonestProvider{Site: site},
		stallIndex: 0,
		stall:      time.Second,
	}
	addr, stop := startServer(t, prov, true)
	defer stop()
	conn := dialMux(t, addr)
	done := make(chan error, 1)
	go func() {
		_, err := conn.GetSegment(context.Background(), ef.FileID, 0)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	conn.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("in-flight exchange survived Close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not unblock in-flight exchange")
	}
	if conn.Healthy() {
		t.Fatal("closed conn still healthy")
	}
	if _, err := conn.GetSegment(context.Background(), ef.FileID, 1); err == nil {
		t.Fatal("exchange on closed conn succeeded")
	}
}

// legacyServer speaks only the v1 protocol, answering any unknown frame
// type (including Hello) with TypeError — the exact behavior of a pre-mux
// geoproofd build, used to prove negotiation fallback.
func legacyServer(t *testing.T, provider cloud.Provider) (string, func()) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer conn.Close()
				for {
					typ, payload, err := wire.ReadFrame(conn)
					if err != nil {
						return
					}
					switch typ {
					case wire.TypePing:
						if wire.WriteFrame(conn, wire.TypePong, nil) != nil {
							return
						}
					case wire.TypeSegmentRequest:
						req, derr := wire.DecodeSegmentRequest(payload)
						if derr != nil {
							if wire.WriteFrame(conn, wire.TypeError, wire.ErrorMessage{Msg: derr.Error()}.Encode()) != nil {
								return
							}
							continue
						}
						data, _, ferr := provider.FetchSegment(req.FileID, int64(req.Index))
						if ferr != nil {
							if wire.WriteFrame(conn, wire.TypeError, wire.ErrorMessage{Msg: ferr.Error()}.Encode()) != nil {
								return
							}
							continue
						}
						if wire.WriteFrame(conn, wire.TypeSegmentResponse, data) != nil {
							return
						}
					default:
						if wire.WriteFrame(conn, wire.TypeError, wire.ErrorMessage{Msg: "unknown frame type"}.Encode()) != nil {
							return
						}
					}
				}
			}()
		}
	}()
	return lis.Addr().String(), func() {
		lis.Close()
		wg.Wait()
	}
}

func TestMuxNegotiationFallsBackToV1(t *testing.T) {
	_, ef, site := tcpFixture(t)
	addr, stop := legacyServer(t, &cloud.HonestProvider{Site: site})
	defer stop()
	pc, err := DialMuxProver(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	if _, ok := pc.(*TCPProverConn); !ok {
		t.Fatalf("negotiated %T against legacy server, want *TCPProverConn", pc)
	}
	// The fallback connection works on the very same socket.
	seg, err := pc.GetSegment(context.Background(), ef.FileID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(seg) != ef.Layout.SegmentSize() {
		t.Fatalf("segment size %d", len(seg))
	}
	if _, err := pc.Ping(context.Background()); err != nil {
		t.Fatalf("ping over fallback conn: %v", err)
	}
}

func TestMuxV1ClientAgainstMuxServer(t *testing.T) {
	// The other interop direction: a v1-only client (plain DialProver, no
	// Hello) against the current server must be served by the v1 loop.
	_, ef, site := tcpFixture(t)
	addr, stop := startServer(t, &cloud.HonestProvider{Site: site}, false)
	defer stop()
	conn, err := DialProver(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.GetSegment(context.Background(), ef.FileID, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// rawMuxConn negotiates the mux protocol by hand so tests can inject
// arbitrary frames.
func rawMuxConn(t *testing.T, addr string) net.Conn {
	t.Helper()
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	hello := wire.Hello{MaxVersion: wire.MuxVersion, Features: wire.FeatureBatch}
	if err := wire.WriteFrame(raw, wire.TypeHello, hello.Encode()); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := wire.ReadFrame(raw)
	if err != nil {
		t.Fatal(err)
	}
	if typ != wire.TypeHelloAck {
		t.Fatalf("hello reply type %d", typ)
	}
	if _, err := wire.DecodeHelloAck(payload); err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestMuxServerMalformedBatchAbortsStream(t *testing.T) {
	_, ef, site := tcpFixture(t)
	addr, stop := startServer(t, &cloud.HonestProvider{Site: site}, false)
	defer stop()
	raw := rawMuxConn(t, addr)
	defer raw.Close()
	// Garbage batch payload: the server cannot know how many reply frames
	// the stream owes, so it must abort exactly that stream.
	if err := wire.WriteMuxFrame(raw, wire.TypeSegmentBatchRequest, 7, []byte{0xFF}); err != nil {
		t.Fatal(err)
	}
	typ, stream, payload, err := wire.ReadMuxFrame(raw)
	if err != nil {
		t.Fatal(err)
	}
	wire.PutBuffer(payload)
	if typ != wire.TypeStreamAbort || stream != 7 {
		t.Fatalf("got type %d stream %d, want abort on stream 7", typ, stream)
	}
	// The connection survives: a well-formed exchange still works.
	req := wire.SegmentRequest{FileID: ef.FileID, Index: 0}
	if err := wire.WriteMuxFrame(raw, wire.TypeSegmentRequest, 8, req.Encode()); err != nil {
		t.Fatal(err)
	}
	typ, stream, payload, err = wire.ReadMuxFrame(raw)
	if err != nil {
		t.Fatal(err)
	}
	wire.PutBuffer(payload)
	if typ != wire.TypeSegmentResponse || stream != 8 {
		t.Fatalf("got type %d stream %d after abort", typ, stream)
	}
}

func TestMuxServerUnknownTypePerStreamError(t *testing.T) {
	_, _, site := tcpFixture(t)
	addr, stop := startServer(t, &cloud.HonestProvider{Site: site}, false)
	defer stop()
	raw := rawMuxConn(t, addr)
	defer raw.Close()
	if err := wire.WriteMuxFrame(raw, 99, 5, nil); err != nil {
		t.Fatal(err)
	}
	typ, stream, payload, err := wire.ReadMuxFrame(raw)
	if err != nil {
		t.Fatal(err)
	}
	wire.PutBuffer(payload)
	if typ != wire.TypeError || stream != 5 {
		t.Fatalf("got type %d stream %d", typ, stream)
	}
}

func TestMuxClientRejectsUnknownStream(t *testing.T) {
	// A server that answers on a stream the client never issued proves
	// the two sides disagree about framing; the client must kill the
	// connection rather than mis-deliver frames.
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	served := make(chan struct{})
	go func() {
		defer close(served)
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		typ, payload, err := wire.ReadFrame(conn)
		if err != nil || typ != wire.TypeHello {
			return
		}
		if _, err := wire.DecodeHello(payload); err != nil {
			return
		}
		ack := wire.HelloAck{Version: wire.MuxVersion, Features: wire.FeatureBatch}
		if wire.WriteFrame(conn, wire.TypeHelloAck, ack.Encode()) != nil {
			return
		}
		// Answer whatever arrives on a wildly different stream ID.
		_, stream, payload2, err := wire.ReadMuxFrame(conn)
		if err != nil {
			return
		}
		wire.PutBuffer(payload2)
		_ = wire.WriteMuxFrame(conn, wire.TypeSegmentResponse, stream+1000, []byte("stray"))
	}()
	pc, err := DialMuxProver(lis.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	mc := pc.(*MuxProverConn)
	_, err = mc.GetSegment(context.Background(), "f", 0)
	if err == nil {
		t.Fatal("exchange against misbehaving server succeeded")
	}
	<-served
	if mc.Healthy() {
		t.Fatal("conn still healthy after unknown-stream frame")
	}
}

func TestMuxConcurrentAudits(t *testing.T) {
	// Whole audits — batch streams — interleaved on one connection.
	enc, ef, site := tcpFixture(t)
	addr, stop := startServer(t, &cloud.HonestProvider{Site: site}, false)
	defer stop()
	conn := dialMux(t, addr)
	defer conn.Close()

	signer, _ := crypt.NewSigner()
	verifier, err := NewVerifier(signer, &gps.Receiver{True: geo.Brisbane}, nil)
	if err != nil {
		t.Fatal(err)
	}
	policy := DefaultPolicy(cloud.SLA{Center: geo.Brisbane, RadiusKm: 100})
	policy.TMax = time.Second
	tpa, err := NewTPA(enc, signer.Public(), policy)
	if err != nil {
		t.Fatal(err)
	}
	const audits = 8
	var wg sync.WaitGroup
	errs := make(chan error, audits)
	for a := 0; a < audits; a++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req, err := tpa.NewRequest(ef.FileID, ef.Layout, 10)
			if err != nil {
				errs <- err
				return
			}
			st, err := verifier.RunAudit(context.Background(), req, conn)
			if err != nil {
				errs <- err
				return
			}
			if rep := tpa.VerifyAudit(req, ef.Layout, st); !rep.Accepted {
				errs <- errors.New("audit rejected: " + rep.Reason())
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}
