package core

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/geo"
)

func FuzzUnmarshalTranscript(f *testing.F) {
	seed := Transcript{
		FileID:   "f",
		Nonce:    []byte{1, 2},
		Position: geo.Brisbane,
		Rounds:   []AuditRound{{Index: 3, Segment: []byte{4}, RTT: time.Millisecond}},
	}
	f.Add(seed.Marshal())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, 'x'})
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := UnmarshalTranscript(data)
		if err != nil {
			return
		}
		// Canonical: anything that parses must re-marshal to the same
		// bytes (signatures depend on this).
		if !bytes.Equal(tr.Marshal(), data) {
			t.Fatal("parsed transcript is not canonical")
		}
	})
}

func FuzzDecodeAuditRequest(f *testing.F) {
	f.Add(EncodeAuditRequest(AuditRequest{FileID: "f", NumSegments: 10, K: 2, Nonce: []byte{1}}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeAuditRequest(data)
		if err != nil {
			return
		}
		if err := req.Validate(); err != nil {
			t.Fatalf("decoder returned invalid request: %v", err)
		}
		if !bytes.Equal(EncodeAuditRequest(req), data) {
			t.Fatal("request decode/encode not canonical")
		}
	})
}

func FuzzDecodeSignedTranscript(f *testing.F) {
	st := SignedTranscript{
		Transcript: Transcript{FileID: "f", Nonce: []byte{1}, Rounds: []AuditRound{{Index: 1}}},
		Signature:  []byte{9},
	}
	f.Add(EncodeSignedTranscript(st))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeSignedTranscript(data)
		if err != nil {
			return
		}
		if !bytes.Equal(EncodeSignedTranscript(got), data) {
			t.Fatal("signed transcript decode/encode not canonical")
		}
	})
}
