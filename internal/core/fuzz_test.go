package core

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/merkle"
)

func FuzzUnmarshalTranscript(f *testing.F) {
	seed := Transcript{
		FileID:   "f",
		Nonce:    []byte{1, 2},
		Position: geo.Brisbane,
		Rounds:   []AuditRound{{Index: 3, Segment: []byte{4}, RTT: time.Millisecond}},
	}
	f.Add(seed.Marshal())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, 'x'})
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := UnmarshalTranscript(data)
		if err != nil {
			return
		}
		// Canonical: anything that parses must re-marshal to the same
		// bytes (signatures depend on this).
		if !bytes.Equal(tr.Marshal(), data) {
			t.Fatal("parsed transcript is not canonical")
		}
	})
}

func FuzzDecodeAuditRequest(f *testing.F) {
	f.Add(EncodeAuditRequest(AuditRequest{FileID: "f", NumSegments: 10, K: 2, Nonce: []byte{1}}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeAuditRequest(data)
		if err != nil {
			return
		}
		if err := req.Validate(); err != nil {
			t.Fatalf("decoder returned invalid request: %v", err)
		}
		if !bytes.Equal(EncodeAuditRequest(req), data) {
			t.Fatal("request decode/encode not canonical")
		}
	})
}

func FuzzDecodeSignedTranscript(f *testing.F) {
	st := SignedTranscript{
		Transcript: Transcript{FileID: "f", Nonce: []byte{1}, Rounds: []AuditRound{{Index: 1}}},
		Signature:  []byte{9},
	}
	f.Add(EncodeSignedTranscript(st))
	f.Add(EncodeSignedTranscript(SignedTranscript{
		Transcript: st.Transcript,
		Batch: &BatchAttestation{
			Root:    merkle.LeafHash([]byte{1}),
			RootSig: []byte{7, 7},
			Proof:   merkle.Proof{Index: 1, Steps: []merkle.ProofStep{{Left: true}}},
		},
	}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeSignedTranscript(data)
		if err != nil {
			return
		}
		if !bytes.Equal(EncodeSignedTranscript(got), data) {
			t.Fatal("signed transcript decode/encode not canonical")
		}
	})
}

// FuzzBatchAttestation fuzzes the inclusion-proof wire codec the batch
// attestation rides in: anything that decodes must re-encode to the
// identical bytes, and the decoded proof must stay within the step
// bound the decoder promises.
func FuzzBatchAttestation(f *testing.F) {
	att := BatchAttestation{
		Root:    merkle.LeafHash([]byte("root")),
		RootSig: []byte{1, 2, 3},
		Proof: merkle.Proof{Index: 5, Steps: []merkle.ProofStep{
			{Sibling: merkle.LeafHash([]byte("sib")), Left: true},
			{Sibling: merkle.LeafHash([]byte("sib2"))},
		}},
	}
	f.Add(EncodeBatchAttestation(att))
	f.Add(EncodeBatchAttestation(BatchAttestation{}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeBatchAttestation(data)
		if err != nil {
			return
		}
		if len(got.Proof.Steps) > maxProofSteps {
			t.Fatalf("decoder admitted %d proof steps", len(got.Proof.Steps))
		}
		if !bytes.Equal(EncodeBatchAttestation(got), data) {
			t.Fatal("attestation decode/encode not canonical")
		}
	})
}
