package core

import (
	"bytes"
	"context"
	"net"
	"testing"
	"time"

	"repro/internal/cloud"
	"repro/internal/crypt"
	"repro/internal/geo"
	"repro/internal/gps"
	"repro/internal/wire"
)

// batchFixture extends the simnet fixture with a batch-signing copy of
// the verifier. MaxBatch 1 keeps single audits synchronous (no timer)
// while still exercising the full root-signature + proof path.
func batchFixture(t *testing.T) (*fixture, *Verifier) {
	t.Helper()
	_, ef := encodeTestFile(t)
	site := honestSite(t, ef)
	fx := newFixture(t, &cloud.HonestProvider{Site: site})
	bs := crypt.NewBatchSigner(fx.verifier.Public(), crypt.BatchSignerOptions{MaxBatch: 1})
	t.Cleanup(bs.Close)
	return fx, fx.verifier.WithBatchSigner(bs)
}

func TestBatchAttestedAuditAccepted(t *testing.T) {
	fx, bv := batchFixture(t)
	req, err := fx.tpa.NewRequest(testFileID, fx.ef.Layout, 20)
	if err != nil {
		t.Fatal(err)
	}
	st, err := bv.RunAudit(context.Background(), req, fx.conn)
	if err != nil {
		t.Fatal(err)
	}
	if st.Batch == nil || len(st.Signature) != 0 {
		t.Fatalf("batch verifier produced mode %v", st.Mode())
	}
	rep := fx.tpa.VerifyAudit(req, fx.ef.Layout, st)
	if !rep.Accepted {
		t.Fatalf("batch-attested audit rejected: %s", rep.Reason())
	}
	if rep.Attestation != AttestBatch {
		t.Fatalf("attestation mode %v, want batch", rep.Attestation)
	}
	// The same verdict as per-transcript mode, including the timing and
	// distance-bound numbers: only the attestation form differs.
	st2, err := fx.verifier.RunAudit(context.Background(), req, fx.conn)
	if err != nil {
		t.Fatal(err)
	}
	rep2 := fx.tpa.VerifyAudit(req, fx.ef.Layout, st2)
	if rep2.Attestation != AttestPerTranscript {
		t.Fatalf("attestation mode %v, want per-transcript", rep2.Attestation)
	}
	if rep.Accepted != rep2.Accepted || rep.SegmentsOK != rep2.SegmentsOK ||
		rep.TimingOK != rep2.TimingOK || rep.PositionOK != rep2.PositionOK {
		t.Fatalf("batch verdict %+v differs from per-transcript %+v", rep, rep2)
	}
}

// TestBatchAttestationAdversarial covers the forgery shapes a hostile
// daemon could try against the batch path.
func TestBatchAttestationAdversarial(t *testing.T) {
	fx, bv := batchFixture(t)
	runOne := func() (AuditRequest, SignedTranscript) {
		t.Helper()
		req, err := fx.tpa.NewRequest(testFileID, fx.ef.Layout, 8)
		if err != nil {
			t.Fatal(err)
		}
		st, err := bv.RunAudit(context.Background(), req, fx.conn)
		if err != nil {
			t.Fatal(err)
		}
		return req, st
	}

	t.Run("proof for a leaf not in the tree", func(t *testing.T) {
		// Graft audit B's (valid, signed) attestation onto audit A's
		// transcript: A's digest is not a leaf of B's tree, so the
		// inclusion proof must fail even though the root signature is
		// genuine.
		reqA, stA := runOne()
		_, stB := runOne()
		stA.Batch = stB.Batch
		rep := fx.tpa.VerifyAudit(reqA, fx.ef.Layout, stA)
		if rep.SignatureOK || rep.Accepted {
			t.Fatalf("foreign inclusion proof accepted: %+v", rep)
		}
		if rep.Attestation != AttestBatch {
			t.Fatalf("attestation mode %v", rep.Attestation)
		}
	})

	t.Run("root signed by the wrong key", func(t *testing.T) {
		// A fresh TPA so the genuine root is not already in the
		// verified-root cache (cache hits are sound only because entry
		// requires a valid signature).
		tpa, err := NewTPA(fx.enc, fx.verifier.Public().Public(), fx.tpa.Policy())
		if err != nil {
			t.Fatal(err)
		}
		req, st := runOne()
		rogue, err := crypt.NewSigner()
		if err != nil {
			t.Fatal(err)
		}
		sig, err := rogue.SignBatchRoot(st.Batch.Root)
		if err != nil {
			t.Fatal(err)
		}
		forged := *st.Batch
		forged.RootSig = sig
		st.Batch = &forged
		rep := tpa.VerifyAudit(req, fx.ef.Layout, st)
		if rep.SignatureOK || rep.Accepted {
			t.Fatalf("wrong-key root signature accepted: %+v", rep)
		}
	})

	t.Run("tampered transcript under a valid attestation", func(t *testing.T) {
		req, st := runOne()
		st.Transcript.Rounds[0].RTT += time.Millisecond
		rep := fx.tpa.VerifyAudit(req, fx.ef.Layout, st)
		if rep.SignatureOK || rep.Accepted {
			t.Fatalf("tampered batch-attested transcript accepted: %+v", rep)
		}
	})

	t.Run("per-transcript signature forged as batch", func(t *testing.T) {
		// Presenting a per-transcript signature in the RootSig slot must
		// fail: the domain prefix separates the two signature kinds.
		req, st := runOne()
		plain, err := fx.verifier.RunAudit(context.Background(), req, fx.conn)
		if err != nil {
			t.Fatal(err)
		}
		forged := *st.Batch
		forged.RootSig = plain.Signature
		st.Batch = &forged
		tpa, err := NewTPA(fx.enc, fx.verifier.Public().Public(), fx.tpa.Policy())
		if err != nil {
			t.Fatal(err)
		}
		if rep := tpa.VerifyAudit(req, fx.ef.Layout, st); rep.SignatureOK {
			t.Fatalf("plain signature accepted as root signature: %+v", rep)
		}
	})
}

// TestVerifyAuditsMixedModes checks one sweep holding batch-attested,
// per-transcript and tampered transcripts: every report must match its
// sequential VerifyAudit verdict and carry the right attestation mode.
func TestVerifyAuditsMixedModes(t *testing.T) {
	fx, bv := batchFixture(t)
	const nAudits = 9
	jobs := make([]AuditJob, 0, nAudits)
	for i := 0; i < nAudits; i++ {
		req, err := fx.tpa.NewRequest(testFileID, fx.ef.Layout, 8)
		if err != nil {
			t.Fatal(err)
		}
		v := fx.verifier
		if i%2 == 0 {
			v = bv
		}
		st, err := v.RunAudit(context.Background(), req, fx.conn)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, AuditJob{Req: req, Layout: fx.ef.Layout, Signed: st})
	}
	// One tampered transcript of each mode.
	jobs[2].Signed.Transcript.Rounds[0].Segment[0] ^= 0xFF
	jobs[3].Signed.Transcript.Rounds[0].Segment[0] ^= 0xFF

	reports := fx.tpa.VerifyAudits(jobs)
	for i, job := range jobs {
		want := fx.tpa.VerifyAudit(job.Req, job.Layout, job.Signed)
		got := reports[i]
		if got.Accepted != want.Accepted || got.SignatureOK != want.SignatureOK ||
			got.Attestation != want.Attestation || got.SegmentsBad != want.SegmentsBad {
			t.Fatalf("job %d: sweep report %+v differs from sequential %+v", i, got, want)
		}
		wantMode := AttestPerTranscript
		if i%2 == 0 {
			wantMode = AttestBatch
		}
		if got.Attestation != wantMode {
			t.Fatalf("job %d: attestation %v, want %v", i, got.Attestation, wantMode)
		}
		if i == 2 || i == 3 {
			if got.Accepted {
				t.Fatalf("tampered job %d accepted", i)
			}
		} else if !got.Accepted {
			t.Fatalf("honest job %d rejected: %s", i, got.Reason())
		}
	}
}

func TestSignedTranscriptCodecBatch(t *testing.T) {
	fx, bv := batchFixture(t)
	req, err := fx.tpa.NewRequest(testFileID, fx.ef.Layout, 8)
	if err != nil {
		t.Fatal(err)
	}
	st, err := bv.RunAudit(context.Background(), req, fx.conn)
	if err != nil {
		t.Fatal(err)
	}
	enc := EncodeSignedTranscript(st)
	got, err := DecodeSignedTranscript(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Batch == nil {
		t.Fatal("attestation lost in round trip")
	}
	if got.Batch.Root != st.Batch.Root || got.Batch.Proof.Index != st.Batch.Proof.Index ||
		!bytes.Equal(got.Batch.RootSig, st.Batch.RootSig) ||
		len(got.Batch.Proof.Steps) != len(st.Batch.Proof.Steps) {
		t.Fatalf("attestation fields drifted: %+v vs %+v", got.Batch, st.Batch)
	}
	if !bytes.Equal(EncodeSignedTranscript(got), enc) {
		t.Fatal("re-encode differs: codec not canonical")
	}
	// The decoded transcript must verify end to end.
	if rep := fx.tpa.VerifyAudit(req, fx.ef.Layout, got); !rep.Accepted {
		t.Fatalf("decoded batch transcript rejected: %s", rep.Reason())
	}
}

// TestVerifierServerBatchNegotiation covers all four peer pairings of
// the feature-negotiated TPA↔daemon leg.
func TestVerifierServerBatchNegotiation(t *testing.T) {
	enc, ef, site := tcpFixture(t)
	proverAddr, stopProver := startServer(t, &cloud.HonestProvider{Site: site}, false)
	defer stopProver()

	signer, err := crypt.NewSigner()
	if err != nil {
		t.Fatal(err)
	}
	verifier, err := NewVerifier(signer, &gps.Receiver{True: geo.Brisbane}, nil)
	if err != nil {
		t.Fatal(err)
	}
	policy := DefaultPolicy(cloud.SLA{Center: geo.Brisbane, RadiusKm: 100})
	policy.TMax = 250 * time.Millisecond
	tpa, err := NewTPA(enc, signer.Public(), policy)
	if err != nil {
		t.Fatal(err)
	}

	startVerifierd := func(bs *crypt.BatchSigner) (string, func()) {
		t.Helper()
		vs := &VerifierServer{
			Verifier:    verifier,
			BatchSigner: bs,
			DialProver: func() (ProverConn, error) {
				return DialProver(proverAddr, time.Second)
			},
		}
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan struct{})
		go func() { defer close(done); _ = vs.Serve(lis) }()
		return lis.Addr().String(), func() { _ = vs.Close(); <-done }
	}

	audit := func(remote *RemoteVerifier) SignedTranscript {
		t.Helper()
		req, err := tpa.NewRequest(ef.FileID, ef.Layout, 4)
		if err != nil {
			t.Fatal(err)
		}
		st, err := remote.RunAudit(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if rep := tpa.VerifyAudit(req, ef.Layout, st); !rep.Accepted {
			t.Fatalf("audit rejected: %s", rep.Reason())
		}
		return st
	}

	t.Run("new TPA, batch daemon", func(t *testing.T) {
		bs := crypt.NewBatchSigner(signer, crypt.BatchSignerOptions{MaxBatch: 1})
		defer bs.Close()
		addr, stop := startVerifierd(bs)
		defer stop()
		remote, err := DialVerifier(addr, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer remote.Close()
		if !remote.BatchSign() {
			t.Fatal("batch daemon did not grant FeatureBatchSign")
		}
		if st := audit(remote); st.Batch == nil {
			t.Fatal("negotiated connection returned a per-transcript signature")
		}
	})

	t.Run("new TPA, daemon without batcher", func(t *testing.T) {
		addr, stop := startVerifierd(nil)
		defer stop()
		remote, err := DialVerifier(addr, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer remote.Close()
		if remote.BatchSign() {
			t.Fatal("feature granted by a daemon with no batch signer")
		}
		if st := audit(remote); st.Batch != nil || len(st.Signature) == 0 {
			t.Fatal("expected a per-transcript signature")
		}
	})

	t.Run("old TPA, batch daemon", func(t *testing.T) {
		// An old client never sends a Hello: raw v1 frames straight in.
		bs := crypt.NewBatchSigner(signer, crypt.BatchSignerOptions{MaxBatch: 1})
		defer bs.Close()
		addr, stop := startVerifierd(bs)
		defer stop()
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		req, err := tpa.NewRequest(ef.FileID, ef.Layout, 4)
		if err != nil {
			t.Fatal(err)
		}
		if err := wire.WriteFrame(conn, wire.TypeAuditRequest, EncodeAuditRequest(req)); err != nil {
			t.Fatal(err)
		}
		typ, payload, err := wire.ReadFrame(conn)
		if err != nil || typ != wire.TypeSignedTranscript {
			t.Fatalf("typ=%d err=%v", typ, err)
		}
		st, err := DecodeSignedTranscript(payload)
		if err != nil {
			t.Fatal(err)
		}
		if st.Batch != nil || len(st.Signature) == 0 {
			t.Fatal("un-negotiated connection got a batch attestation")
		}
		if rep := tpa.VerifyAudit(req, ef.Layout, st); !rep.Accepted {
			t.Fatalf("audit rejected: %s", rep.Reason())
		}
	})

	t.Run("new TPA, old daemon", func(t *testing.T) {
		// Simulate an old daemon: answers the Hello probe with its
		// unknown-frame TypeError, then keeps serving v1.
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer lis.Close()
		go func() {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
			for {
				typ, _, err := wire.ReadFrame(conn)
				if err != nil {
					return
				}
				switch typ {
				case wire.TypePing:
					_ = wire.WriteFrame(conn, wire.TypePong, nil)
				default:
					_ = wire.WriteFrame(conn, wire.TypeError, wire.ErrorMessage{Msg: "unknown frame type"}.Encode())
				}
			}
		}()
		remote, err := DialVerifier(lis.Addr().String(), time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer remote.Close()
		if remote.BatchSign() {
			t.Fatal("feature granted by an old daemon")
		}
	})
}
