package core

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/cloud"
	"repro/internal/wire"
)

// This file is the live-deployment transport: the prover listens on TCP
// and serves segment requests; the verifier connects and times each
// round on the wall clock. It is also used by the integration tests over
// net.Pipe with injected delays.

// ProverServer serves segment requests from a cloud.Provider over a
// listener. SimulateServiceTime controls whether the provider's modelled
// service latency is actually slept (true for realistic end-to-end timing
// demos, false to serve at line rate). Concurrency caps how many
// connections are served simultaneously (≤ 0 = unlimited): excess
// connections queue at the accept loop rather than overcommitting the
// disk, matching the concurrency knob of the rest of the stack.
type ProverServer struct {
	Provider            cloud.Provider
	SimulateServiceTime bool
	Concurrency         int

	mu     sync.Mutex
	closed bool
	lis    net.Listener
	wg     sync.WaitGroup
}

// Serve accepts and handles connections until the listener is closed.
// It always returns a non-nil error (net.ErrClosed after Close).
func (s *ProverServer) Serve(lis net.Listener) error {
	s.mu.Lock()
	s.lis = lis
	var sem chan struct{}
	if s.Concurrency > 0 {
		sem = make(chan struct{}, s.Concurrency)
	}
	s.mu.Unlock()
	for {
		conn, err := lis.Accept()
		if err != nil {
			s.wg.Wait()
			return err
		}
		if cap(sem) > 0 {
			sem <- struct{}{}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			if cap(sem) > 0 {
				defer func() { <-sem }()
			}
			s.handle(conn)
		}()
	}
}

// Close stops the listener; in-flight connections finish their current
// request.
func (s *ProverServer) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.lis != nil {
		return s.lis.Close()
	}
	return nil
}

// handle serves one connection: a stream of request/response frames.
func (s *ProverServer) handle(conn net.Conn) {
	defer conn.Close()
	for {
		typ, payload, err := wire.ReadFrame(conn)
		if err != nil {
			return // EOF or broken peer: nothing to answer
		}
		switch typ {
		case wire.TypePing:
			if err := wire.WriteFrame(conn, wire.TypePong, nil); err != nil {
				return
			}
		case wire.TypeSegmentRequest:
			req, err := wire.DecodeSegmentRequest(payload)
			if err != nil {
				if werr := wire.WriteFrame(conn, wire.TypeError, wire.ErrorMessage{Msg: err.Error()}.Encode()); werr != nil {
					return
				}
				continue
			}
			data, lookup, err := s.Provider.FetchSegment(req.FileID, int64(req.Index))
			if err != nil {
				if werr := wire.WriteFrame(conn, wire.TypeError, wire.ErrorMessage{Msg: err.Error()}.Encode()); werr != nil {
					return
				}
				continue
			}
			if s.SimulateServiceTime && lookup > 0 {
				time.Sleep(lookup)
			}
			if err := wire.WriteFrame(conn, wire.TypeSegmentResponse, wire.SegmentResponse{Data: data}.Encode()); err != nil {
				return
			}
		default:
			if err := wire.WriteFrame(conn, wire.TypeError, wire.ErrorMessage{Msg: "unknown frame type"}.Encode()); err != nil {
				return
			}
		}
	}
}

// TCPProverConn is the verifier side of the TCP transport. It is safe
// for sequential use only, matching the strictly serial audit rounds.
type TCPProverConn struct {
	conn net.Conn
	// Delay injects artificial symmetric one-way delay per direction,
	// for failure-injection and relay experiments on loopback.
	Delay time.Duration
}

var _ ProverConn = (*TCPProverConn)(nil)

// NewTCPProverConn wraps an established connection.
func NewTCPProverConn(conn net.Conn) *TCPProverConn {
	return &TCPProverConn{conn: conn}
}

// DialProver connects to a prover server.
func DialProver(addr string, timeout time.Duration) (*TCPProverConn, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("dial prover: %w", err)
	}
	return &TCPProverConn{conn: conn}, nil
}

// Close closes the underlying connection.
func (c *TCPProverConn) Close() error { return c.conn.Close() }

// SetDeadline bounds all future reads and writes on the connection. The
// audit scheduler sets an absolute per-attempt deadline so a hung prover
// surfaces as an I/O timeout instead of blocking a goroutine forever.
func (c *TCPProverConn) SetDeadline(t time.Time) error { return c.conn.SetDeadline(t) }

// Ping round-trips an empty frame, for liveness checks and LAN-latency
// baselining.
func (c *TCPProverConn) Ping() (time.Duration, error) {
	start := time.Now()
	if err := wire.WriteFrame(c.conn, wire.TypePing, nil); err != nil {
		return 0, err
	}
	typ, _, err := wire.ReadFrame(c.conn)
	if err != nil {
		return 0, err
	}
	if typ != wire.TypePong {
		return 0, errors.New("core: unexpected ping reply")
	}
	return time.Since(start), nil
}

// GetSegment performs one request/response exchange.
func (c *TCPProverConn) GetSegment(fileID string, index uint64) ([]byte, error) {
	if c.Delay > 0 {
		time.Sleep(c.Delay)
	}
	req := wire.SegmentRequest{FileID: fileID, Index: index}
	if err := wire.WriteFrame(c.conn, wire.TypeSegmentRequest, req.Encode()); err != nil {
		return nil, fmt.Errorf("send request: %w", err)
	}
	typ, payload, err := wire.ReadFrame(c.conn)
	if err != nil {
		return nil, fmt.Errorf("read response: %w", err)
	}
	if c.Delay > 0 {
		time.Sleep(c.Delay)
	}
	switch typ {
	case wire.TypeSegmentResponse:
		resp, err := wire.DecodeSegmentResponse(payload)
		if err != nil {
			return nil, err
		}
		return resp.Data, nil
	case wire.TypeError:
		return nil, wire.DecodeErrorMessage(payload)
	default:
		return nil, fmt.Errorf("core: unexpected frame type %d", typ)
	}
}
