package core

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cloud"
	"repro/internal/wire"
)

// This file is the live-deployment transport: the prover listens on TCP
// and serves segment requests; the verifier connects and times each
// round on the wall clock. It is also used by the integration tests over
// net.Pipe with injected delays.

// ProverServer serves segment requests from a cloud.Provider over a
// listener. SimulateServiceTime controls whether the provider's modelled
// service latency is actually slept (true for realistic end-to-end timing
// demos, false to serve at line rate). Concurrency caps how many
// connections are served simultaneously (≤ 0 = unlimited): excess
// connections queue at the accept loop rather than overcommitting the
// disk, matching the concurrency knob of the rest of the stack.
type ProverServer struct {
	Provider            cloud.Provider
	SimulateServiceTime bool
	Concurrency         int

	mu     sync.Mutex
	closed bool
	lis    net.Listener
	wg     sync.WaitGroup
}

// Serve accepts and handles connections until the listener is closed.
// It always returns a non-nil error (net.ErrClosed after Close).
func (s *ProverServer) Serve(lis net.Listener) error {
	s.mu.Lock()
	s.lis = lis
	var sem chan struct{}
	if s.Concurrency > 0 {
		sem = make(chan struct{}, s.Concurrency)
	}
	s.mu.Unlock()
	for {
		conn, err := lis.Accept()
		if err != nil {
			s.wg.Wait()
			return err
		}
		if cap(sem) > 0 {
			sem <- struct{}{}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			if cap(sem) > 0 {
				defer func() { <-sem }()
			}
			s.handle(conn)
		}()
	}
}

// Close stops the listener; in-flight connections finish their current
// request.
func (s *ProverServer) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.lis != nil {
		return s.lis.Close()
	}
	return nil
}

// handle serves one connection: a stream of request/response frames.
func (s *ProverServer) handle(conn net.Conn) {
	defer conn.Close()
	for {
		typ, payload, err := wire.ReadFrame(conn)
		if err != nil {
			return // EOF or broken peer: nothing to answer
		}
		switch typ {
		case wire.TypePing:
			if err := wire.WriteFrame(conn, wire.TypePong, nil); err != nil {
				return
			}
		case wire.TypeSegmentRequest:
			req, err := wire.DecodeSegmentRequest(payload)
			if err != nil {
				if werr := wire.WriteFrame(conn, wire.TypeError, wire.ErrorMessage{Msg: err.Error()}.Encode()); werr != nil {
					return
				}
				continue
			}
			data, lookup, err := s.Provider.FetchSegment(req.FileID, int64(req.Index))
			if err != nil {
				if werr := wire.WriteFrame(conn, wire.TypeError, wire.ErrorMessage{Msg: err.Error()}.Encode()); werr != nil {
					return
				}
				continue
			}
			if s.SimulateServiceTime && lookup > 0 {
				time.Sleep(lookup)
			}
			if err := wire.WriteFrame(conn, wire.TypeSegmentResponse, wire.SegmentResponse{Data: data}.Encode()); err != nil {
				return
			}
		default:
			if err := wire.WriteFrame(conn, wire.TypeError, wire.ErrorMessage{Msg: "unknown frame type"}.Encode()); err != nil {
				return
			}
		}
	}
}

// TCPProverConn is the verifier side of the TCP transport. It is safe
// for sequential use only, matching the strictly serial audit rounds.
type TCPProverConn struct {
	conn net.Conn
	// Delay injects artificial symmetric one-way delay per direction,
	// for failure-injection and relay experiments on loopback.
	Delay time.Duration
	// desynced latches when a cancelled context abandoned an exchange
	// mid-flight; every later call fails with ErrConnDesynced.
	desynced atomic.Bool
}

var _ ProverConn = (*TCPProverConn)(nil)

// NewTCPProverConn wraps an established connection.
func NewTCPProverConn(conn net.Conn) *TCPProverConn {
	return &TCPProverConn{conn: conn}
}

// DialProver connects to a prover server.
func DialProver(addr string, timeout time.Duration) (*TCPProverConn, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("dial prover: %w", err)
	}
	return &TCPProverConn{conn: conn}, nil
}

// Close closes the underlying connection.
func (c *TCPProverConn) Close() error { return c.conn.Close() }

// SetDeadline bounds all future reads and writes on the connection. The
// audit scheduler sets an absolute per-attempt deadline so a hung prover
// surfaces as an I/O timeout instead of blocking a goroutine forever.
func (c *TCPProverConn) SetDeadline(t time.Time) error { return c.conn.SetDeadline(t) }

// Ping round-trips an empty frame, for liveness checks and LAN-latency
// baselining.
func (c *TCPProverConn) Ping() (time.Duration, error) {
	start := time.Now()
	if err := wire.WriteFrame(c.conn, wire.TypePing, nil); err != nil {
		return 0, err
	}
	typ, _, err := wire.ReadFrame(c.conn)
	if err != nil {
		return 0, err
	}
	if typ != wire.TypePong {
		return 0, errors.New("core: unexpected ping reply")
	}
	return time.Since(start), nil
}

// ErrConnDesynced reports that a request/response connection was
// abandoned mid-exchange by a cancelled context: the peer's response may
// still be in flight, so any further exchange could read a stale frame.
// The connection must be reconnected, never reused.
var ErrConnDesynced = errors.New("core: connection desynced by a cancelled exchange; reconnect")

// pokeOnCancel arms ctx to interrupt conn's blocking I/O by expiring its
// deadline, and returns the disarm function. Disarm reports whether the
// poke fired (waiting out an in-flight callback first, so the report is
// never racy): a fired poke means the exchange was abandoned with the
// response possibly still in flight, and the caller must mark the
// connection desynced — handing back stale frames to the next exchange
// would silently blame a healthy prover.
func pokeOnCancel(ctx context.Context, conn deadliner) (disarm func() (fired bool)) {
	if ctx.Done() == nil {
		return func() bool { return false }
	}
	done := make(chan struct{})
	stop := context.AfterFunc(ctx, func() {
		conn.SetDeadline(time.Now())
		close(done)
	})
	return func() bool {
		if stop() {
			return false // callback never ran and never will
		}
		<-done
		return true
	}
}

// GetSegment performs one request/response exchange. Cancelling ctx
// unblocks an in-flight read by poking the connection deadline, so a
// scheduler-abandoned attempt releases its goroutine and connection
// promptly even against a hung prover.
func (c *TCPProverConn) GetSegment(ctx context.Context, fileID string, index uint64) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if c.desynced.Load() {
		return nil, ErrConnDesynced
	}
	disarm := pokeOnCancel(ctx, c.conn)
	defer func() {
		if disarm() {
			c.desynced.Store(true)
		}
	}()
	if c.Delay > 0 {
		time.Sleep(c.Delay)
	}
	req := wire.SegmentRequest{FileID: fileID, Index: index}
	if err := wire.WriteFrame(c.conn, wire.TypeSegmentRequest, req.Encode()); err != nil {
		return nil, fmt.Errorf("send request: %w", err)
	}
	typ, payload, err := wire.ReadFrame(c.conn)
	if err != nil {
		return nil, fmt.Errorf("read response: %w", err)
	}
	if c.Delay > 0 {
		time.Sleep(c.Delay)
	}
	switch typ {
	case wire.TypeSegmentResponse:
		resp, err := wire.DecodeSegmentResponse(payload)
		if err != nil {
			return nil, err
		}
		return resp.Data, nil
	case wire.TypeError:
		return nil, wire.DecodeErrorMessage(payload)
	default:
		return nil, fmt.Errorf("core: unexpected frame type %d", typ)
	}
}
