package core

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cloud"
	"repro/internal/wire"
)

// This file is the live-deployment transport: the prover listens on TCP
// and serves segment requests; the verifier connects and times each
// round on the wall clock. Two protocols share the listener, negotiated
// per connection (see internal/wire/doc.go): the original v1
// request/response framing, and the v2 mux framing that carries many
// concurrent streams — and whole pipelined challenge batches — over one
// connection. It is also used by the integration tests over net.Pipe
// with injected delays.

// ProverServer serves segment requests from a cloud.Provider over a
// listener. SimulateServiceTime controls whether the provider's modelled
// service latency is actually slept (true for realistic end-to-end timing
// demos, false to serve at line rate). Concurrency bounds the server two
// ways (≤ 0 = unlimited): v1 connections served simultaneously — excess
// connections queue at the accept loop rather than overcommitting the
// disk — and, on each mux connection, streams served concurrently, so
// one greedy peer cannot fan a single socket out into unbounded
// goroutines.
type ProverServer struct {
	Provider            cloud.Provider
	SimulateServiceTime bool
	Concurrency         int

	mu     sync.Mutex
	closed bool
	lis    net.Listener
	wg     sync.WaitGroup
}

// Serve accepts and handles connections until the listener is closed.
// It always returns a non-nil error (net.ErrClosed after Close).
func (s *ProverServer) Serve(lis net.Listener) error {
	s.mu.Lock()
	s.lis = lis
	var sem chan struct{}
	if s.Concurrency > 0 {
		sem = make(chan struct{}, s.Concurrency)
	}
	s.mu.Unlock()
	for {
		conn, err := lis.Accept()
		if err != nil {
			s.wg.Wait()
			return err
		}
		if cap(sem) > 0 {
			sem <- struct{}{}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			if cap(sem) > 0 {
				defer func() { <-sem }()
			}
			s.handle(conn)
		}()
	}
}

// Close stops the listener; in-flight connections finish their current
// request.
func (s *ProverServer) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.lis != nil {
		return s.lis.Close()
	}
	return nil
}

// handle serves one connection. The first frame picks the protocol: a
// well-formed Hello upgrades to the mux framing; anything else — in
// particular a v1 client's opening request — is served by the v1
// request/response loop, first frame included.
func (s *ProverServer) handle(conn net.Conn) {
	defer conn.Close()
	typ, payload, err := wire.ReadFramePooled(conn)
	if err != nil {
		return // EOF or broken peer: nothing to answer
	}
	if typ == wire.TypeHello {
		hello, herr := wire.DecodeHello(payload)
		wire.PutBuffer(payload)
		if herr != nil || hello.MaxVersion < wire.MuxVersion {
			// A malformed or too-old hello gets the same answer a pre-mux
			// server gives an unknown frame type, and the peer falls back
			// to v1 on this connection.
			if wire.WriteFrame(conn, wire.TypeError, wire.ErrorMessage{Msg: "unsupported hello"}.Encode()) != nil {
				return
			}
			s.serveV1(conn)
			return
		}
		ack := wire.HelloAck{Version: wire.MuxVersion, Features: hello.Features & wire.FeatureBatch}
		if wire.WriteFrame(conn, wire.TypeHelloAck, ack.Encode()) != nil {
			return
		}
		metricProverConnsMux.Inc()
		s.serveMux(conn)
		return
	}
	metricProverConnsV1.Inc()
	if !s.serveV1Frame(conn, typ, payload) {
		return
	}
	s.serveV1(conn)
}

// serveV1 runs the v1 request/response loop: one frame in, one frame
// out, strictly serial per connection.
func (s *ProverServer) serveV1(conn net.Conn) {
	for {
		typ, payload, err := wire.ReadFramePooled(conn)
		if err != nil {
			return
		}
		if !s.serveV1Frame(conn, typ, payload) {
			return
		}
	}
}

// serveV1Frame answers one v1 frame, recycling its payload buffer. It
// reports whether the connection is still worth serving.
func (s *ProverServer) serveV1Frame(conn net.Conn, typ byte, payload []byte) bool {
	defer wire.PutBuffer(payload)
	switch typ {
	case wire.TypePing:
		metricProverPings.Inc()
		return wire.WriteFrame(conn, wire.TypePong, nil) == nil
	case wire.TypeSegmentRequest:
		metricProverSegments.Inc()
		req, err := wire.DecodeSegmentRequest(payload)
		if err != nil {
			return wire.WriteFrame(conn, wire.TypeError, wire.ErrorMessage{Msg: err.Error()}.Encode()) == nil
		}
		data, err := s.fetch(req.FileID, req.Index)
		if err != nil {
			return wire.WriteFrame(conn, wire.TypeError, wire.ErrorMessage{Msg: err.Error()}.Encode()) == nil
		}
		return wire.WriteFrame(conn, wire.TypeSegmentResponse, wire.SegmentResponse{Data: data}.Encode()) == nil
	default:
		return wire.WriteFrame(conn, wire.TypeError, wire.ErrorMessage{Msg: "unknown frame type"}.Encode()) == nil
	}
}

// fetch reads one segment from the provider, sleeping its modelled
// service latency when the server simulates it.
func (s *ProverServer) fetch(fileID string, index uint64) ([]byte, error) {
	data, lookup, err := s.Provider.FetchSegment(fileID, int64(index))
	if err != nil {
		return nil, err
	}
	if s.SimulateServiceTime && lookup > 0 {
		time.Sleep(lookup)
	}
	return data, nil
}

// muxServerConn is the server's per-connection mux state: a mutex-guarded
// write path (every frame leaves in one Write call) and a kill switch
// that stops the read loop once any stream hits a fatal write error.
type muxServerConn struct {
	conn net.Conn
	wmu  sync.Mutex
	dead atomic.Bool
}

// writeFrames writes a pre-encoded run of frames as one syscall. On
// failure the connection is marked dead and closed, which unblocks the
// read loop.
func (m *muxServerConn) writeFrames(buf []byte) bool {
	m.wmu.Lock()
	_, err := m.conn.Write(buf)
	m.wmu.Unlock()
	if err != nil {
		if m.dead.CompareAndSwap(false, true) {
			m.conn.Close()
		}
		return false
	}
	return true
}

// writeFrame encodes and writes a single mux frame through a pooled
// buffer.
func (m *muxServerConn) writeFrame(typ byte, stream uint32, payload []byte) bool {
	buf, err := wire.AppendMuxFrame(wire.GetBuffer(0)[:0], typ, stream, payload)
	if err != nil {
		wire.PutBuffer(buf)
		return false
	}
	ok := m.writeFrames(buf)
	wire.PutBuffer(buf)
	return ok
}

// serveMux runs the v2 loop: the read loop only decodes and dispatches,
// stream work runs in bounded goroutines, so one slow fetch cannot
// head-of-line-block the frames queued behind it.
func (s *ProverServer) serveMux(conn net.Conn) {
	m := &muxServerConn{conn: conn}
	var sem chan struct{}
	if s.Concurrency > 0 {
		sem = make(chan struct{}, s.Concurrency)
	}
	var wg sync.WaitGroup
	defer wg.Wait()
	br := bufio.NewReaderSize(conn, 64<<10)
	for {
		typ, stream, payload, err := wire.ReadMuxFrame(br)
		if err != nil || m.dead.Load() {
			return
		}
		switch typ {
		case wire.TypePing:
			metricProverPings.Inc()
			wire.PutBuffer(payload)
			if !m.writeFrame(wire.TypePong, stream, nil) {
				return
			}
		case wire.TypeSegmentRequest:
			metricProverSegments.Inc()
			req, derr := wire.DecodeSegmentRequest(payload)
			wire.PutBuffer(payload)
			if derr != nil {
				if !m.writeFrame(wire.TypeError, stream, wire.ErrorMessage{Msg: derr.Error()}.Encode()) {
					return
				}
				continue
			}
			if cap(sem) > 0 {
				sem <- struct{}{}
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				if cap(sem) > 0 {
					defer func() { <-sem }()
				}
				s.serveSegmentStream(m, stream, req)
			}()
		case wire.TypeSegmentBatchRequest:
			metricProverBatches.Inc()
			req, derr := wire.DecodeSegmentBatchRequest(payload)
			wire.PutBuffer(payload)
			if derr != nil {
				// The peer cannot know how many reply frames a batch it
				// failed to encode would have carried, so the stream is
				// aborted outright rather than answered per index.
				metricProverAborts.Inc()
				if !m.writeFrame(wire.TypeStreamAbort, stream, wire.ErrorMessage{Msg: derr.Error()}.Encode()) {
					return
				}
				continue
			}
			if cap(sem) > 0 {
				sem <- struct{}{}
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				if cap(sem) > 0 {
					defer func() { <-sem }()
				}
				s.serveBatchStream(m, stream, req)
			}()
		default:
			wire.PutBuffer(payload)
			if !m.writeFrame(wire.TypeError, stream, wire.ErrorMessage{Msg: "unknown frame type"}.Encode()) {
				return
			}
		}
	}
}

// serveSegmentStream answers one single-request stream.
func (s *ProverServer) serveSegmentStream(m *muxServerConn, stream uint32, req wire.SegmentRequest) {
	data, err := s.fetch(req.FileID, req.Index)
	if err != nil {
		m.writeFrame(wire.TypeError, stream, wire.ErrorMessage{Msg: err.Error()}.Encode())
		return
	}
	m.writeFrame(wire.TypeSegmentResponse, stream, data)
}

// serveBatchStream answers a pipelined challenge batch: exactly one
// frame per requested index, in request order. Responses are coalesced
// into pooled buffers and flushed in large writes at line rate; when
// service time is simulated, everything produced so far is flushed
// before each sleep so earlier rounds are never delayed by later ones.
func (s *ProverServer) serveBatchStream(m *muxServerConn, stream uint32, req wire.SegmentBatchRequest) {
	buf := wire.GetBuffer(0)[:0]
	flush := func() bool {
		if len(buf) == 0 {
			return true
		}
		ok := m.writeFrames(buf)
		buf = buf[:0]
		return ok
	}
	for _, idx := range req.Indices {
		data, lookup, err := s.Provider.FetchSegment(req.FileID, int64(idx))
		if err == nil && s.SimulateServiceTime && lookup > 0 {
			if !flush() {
				wire.PutBuffer(buf)
				return
			}
			time.Sleep(lookup)
		}
		if err != nil {
			buf, _ = wire.AppendMuxFrame(buf, wire.TypeError, stream, wire.ErrorMessage{Msg: err.Error()}.Encode())
		} else {
			buf, _ = wire.AppendMuxFrame(buf, wire.TypeSegmentResponse, stream, data)
		}
		if len(buf) >= 32<<10 {
			if !flush() {
				wire.PutBuffer(buf)
				return
			}
		}
	}
	flush()
	wire.PutBuffer(buf)
}

// TCPProverConn is the verifier side of the v1 TCP transport. It is safe
// for sequential use only, matching the strictly serial audit rounds;
// MuxProverConn is the multiplexed replacement that shares one
// connection between concurrent audits.
type TCPProverConn struct {
	conn net.Conn
	// Delay injects artificial symmetric one-way delay per direction,
	// for failure-injection and relay experiments on loopback.
	Delay time.Duration
	// desynced latches when a cancelled context abandoned an exchange
	// mid-flight; every later call fails with ErrConnDesynced.
	desynced atomic.Bool
}

var _ ProverConn = (*TCPProverConn)(nil)

// NewTCPProverConn wraps an established connection.
func NewTCPProverConn(conn net.Conn) *TCPProverConn {
	return &TCPProverConn{conn: conn}
}

// DialProver connects to a prover server speaking the v1 protocol.
// DialMuxProver negotiates the multiplexed protocol instead.
func DialProver(addr string, timeout time.Duration) (*TCPProverConn, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("dial prover: %w", err)
	}
	return &TCPProverConn{conn: conn}, nil
}

// Close closes the underlying connection.
func (c *TCPProverConn) Close() error { return c.conn.Close() }

// Healthy reports whether the connection can still carry exchanges — it
// is false once a cancelled exchange desynced the framing. Connection
// pools use it to decide between reuse and redial.
func (c *TCPProverConn) Healthy() bool { return !c.desynced.Load() }

// SetDeadline bounds all future reads and writes on the connection. The
// audit scheduler sets an absolute per-attempt deadline so a hung prover
// surfaces as an I/O timeout instead of blocking a goroutine forever.
func (c *TCPProverConn) SetDeadline(t time.Time) error { return c.conn.SetDeadline(t) }

// Ping round-trips an empty frame, for liveness checks and LAN-latency
// baselining. Cancelling ctx pokes the connection deadline exactly like
// GetSegment, so a liveness probe against a hung prover returns promptly
// instead of hanging its caller (the probe then counts as an abandoned
// exchange: the connection latches ErrConnDesynced).
func (c *TCPProverConn) Ping(ctx context.Context) (time.Duration, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if c.desynced.Load() {
		return 0, ErrConnDesynced
	}
	disarm := pokeOnCancel(ctx, c.conn)
	defer func() {
		if disarm() {
			c.desynced.Store(true)
		}
	}()
	start := time.Now()
	if err := wire.WriteFrame(c.conn, wire.TypePing, nil); err != nil {
		return 0, err
	}
	typ, _, err := wire.ReadFrame(c.conn)
	if err != nil {
		return 0, err
	}
	if typ != wire.TypePong {
		return 0, errors.New("core: unexpected ping reply")
	}
	return time.Since(start), nil
}

// ErrConnDesynced reports that a request/response connection was
// abandoned mid-exchange by a cancelled context: the peer's response may
// still be in flight, so any further exchange could read a stale frame.
// The connection must be reconnected, never reused. Only the v1
// transport can get here — mux streams cancel individually without
// touching their siblings.
var ErrConnDesynced = errors.New("core: connection desynced by a cancelled exchange; reconnect")

// pokeOnCancel arms ctx to interrupt conn's blocking I/O by expiring its
// deadline, and returns the disarm function. Disarm reports whether the
// poke fired (waiting out an in-flight callback first, so the report is
// never racy): a fired poke means the exchange was abandoned with the
// response possibly still in flight, and the caller must mark the
// connection desynced — handing back stale frames to the next exchange
// would silently blame a healthy prover.
func pokeOnCancel(ctx context.Context, conn deadliner) (disarm func() (fired bool)) {
	if ctx.Done() == nil {
		return func() bool { return false }
	}
	done := make(chan struct{})
	stop := context.AfterFunc(ctx, func() {
		conn.SetDeadline(time.Now())
		close(done)
	})
	return func() bool {
		if stop() {
			return false // callback never ran and never will
		}
		<-done
		return true
	}
}

// GetSegment performs one request/response exchange. Cancelling ctx
// unblocks an in-flight read by poking the connection deadline, so a
// scheduler-abandoned attempt releases its goroutine and connection
// promptly even against a hung prover.
func (c *TCPProverConn) GetSegment(ctx context.Context, fileID string, index uint64) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if c.desynced.Load() {
		return nil, ErrConnDesynced
	}
	disarm := pokeOnCancel(ctx, c.conn)
	defer func() {
		if disarm() {
			c.desynced.Store(true)
		}
	}()
	if c.Delay > 0 {
		time.Sleep(c.Delay)
	}
	req := wire.SegmentRequest{FileID: fileID, Index: index}
	if err := wire.WriteFrame(c.conn, wire.TypeSegmentRequest, req.Encode()); err != nil {
		return nil, fmt.Errorf("send request: %w", err)
	}
	typ, payload, err := wire.ReadFrame(c.conn)
	if err != nil {
		return nil, fmt.Errorf("read response: %w", err)
	}
	if c.Delay > 0 {
		time.Sleep(c.Delay)
	}
	switch typ {
	case wire.TypeSegmentResponse:
		resp, err := wire.DecodeSegmentResponse(payload)
		if err != nil {
			return nil, err
		}
		return resp.Data, nil
	case wire.TypeError:
		return nil, wire.DecodeErrorMessage(payload)
	default:
		return nil, fmt.Errorf("core: unexpected frame type %d", typ)
	}
}
