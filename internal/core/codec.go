package core

import (
	"encoding/binary"
	"fmt"

	"repro/internal/geo"
	"time"
)

// Wire codecs for the TPA↔verifier leg of a distributed deployment. The
// transcript's canonical signing encoding (Transcript.Marshal) is fully
// length-delimited, so it doubles as the wire format; the signature is
// appended with its own length prefix.

// byteReader tracks a parse position over a buffer.
type byteReader struct {
	b   []byte
	off int
}

func (r *byteReader) take(n int) ([]byte, error) {
	if n < 0 || r.off+n > len(r.b) {
		return nil, fmt.Errorf("%w: need %d bytes at offset %d of %d", ErrBadTranscript, n, r.off, len(r.b))
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out, nil
}

func (r *byteReader) u32() (uint32, error) {
	b, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b), nil
}

func (r *byteReader) u64() (uint64, error) {
	b, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(b), nil
}

func (r *byteReader) lenPrefixed() ([]byte, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	return r.take(int(n))
}

// UnmarshalTranscript parses the canonical encoding produced by
// Transcript.Marshal. Round-tripping is exact: re-marshalling the result
// yields the identical bytes, so signatures verify across the wire.
func UnmarshalTranscript(b []byte) (Transcript, error) {
	r := &byteReader{b: b}
	var t Transcript

	fid, err := r.lenPrefixed()
	if err != nil {
		return t, err
	}
	t.FileID = string(fid)
	nonce, err := r.lenPrefixed()
	if err != nil {
		return t, err
	}
	t.Nonce = append([]byte{}, nonce...)

	lat, err := r.u64()
	if err != nil {
		return t, err
	}
	lon, err := r.u64()
	if err != nil {
		return t, err
	}
	// Valid fixed-point coordinates (|lat| ≤ 90°, |lon| ≤ 180° at 1e-7°
	// resolution) are small enough to round-trip exactly through
	// float64; anything outside is a malformed fix.
	latI, lonI := int64(lat), int64(lon)
	if latI < -90e7 || latI > 90e7 || lonI < -180e7 || lonI > 180e7 {
		return t, fmt.Errorf("%w: position %d,%d out of range", ErrBadTranscript, latI, lonI)
	}
	t.Position = geo.Position{LatDeg: float64(latI) / 1e7, LonDeg: float64(lonI) / 1e7}

	nRounds, err := r.u32()
	if err != nil {
		return t, err
	}
	if int(nRounds) > len(b) { // each round needs >=21 bytes; cheap sanity cap
		return t, fmt.Errorf("%w: %d rounds in %d bytes", ErrBadTranscript, nRounds, len(b))
	}
	t.Rounds = make([]AuditRound, 0, nRounds)
	for i := uint32(0); i < nRounds; i++ {
		idx, err := r.u64()
		if err != nil {
			return t, err
		}
		rtt, err := r.u64()
		if err != nil {
			return t, err
		}
		flag, err := r.take(1)
		if err != nil {
			return t, err
		}
		if flag[0] > 1 {
			return t, fmt.Errorf("%w: round flag %#x", ErrBadTranscript, flag[0])
		}
		seg, err := r.lenPrefixed()
		if err != nil {
			return t, err
		}
		round := AuditRound{Index: idx, RTT: time.Duration(rtt), Failed: flag[0] == 1}
		if len(seg) > 0 {
			round.Segment = append([]byte{}, seg...)
		}
		t.Rounds = append(t.Rounds, round)
	}
	if r.off != len(b) {
		return t, fmt.Errorf("%w: %d trailing bytes", ErrBadTranscript, len(b)-r.off)
	}
	return t, nil
}

// EncodeSignedTranscript serialises transcript ‖ signature.
func EncodeSignedTranscript(st SignedTranscript) []byte {
	tb := st.Transcript.Marshal()
	out := make([]byte, 0, 8+len(tb)+len(st.Signature))
	var l [4]byte
	binary.BigEndian.PutUint32(l[:], uint32(len(tb)))
	out = append(out, l[:]...)
	out = append(out, tb...)
	binary.BigEndian.PutUint32(l[:], uint32(len(st.Signature)))
	out = append(out, l[:]...)
	out = append(out, st.Signature...)
	return out
}

// DecodeSignedTranscript parses EncodeSignedTranscript's output.
func DecodeSignedTranscript(b []byte) (SignedTranscript, error) {
	r := &byteReader{b: b}
	tb, err := r.lenPrefixed()
	if err != nil {
		return SignedTranscript{}, err
	}
	tr, err := UnmarshalTranscript(tb)
	if err != nil {
		return SignedTranscript{}, err
	}
	sig, err := r.lenPrefixed()
	if err != nil {
		return SignedTranscript{}, err
	}
	if r.off != len(b) {
		return SignedTranscript{}, fmt.Errorf("%w: trailing bytes", ErrBadTranscript)
	}
	return SignedTranscript{Transcript: tr, Signature: append([]byte{}, sig...)}, nil
}

// EncodeAuditRequest serialises an audit request for the TPA→verifier
// leg.
func EncodeAuditRequest(req AuditRequest) []byte {
	id := []byte(req.FileID)
	out := make([]byte, 0, 4+len(id)+8+4+4+len(req.Nonce))
	var l [4]byte
	binary.BigEndian.PutUint32(l[:], uint32(len(id)))
	out = append(out, l[:]...)
	out = append(out, id...)
	var u64 [8]byte
	binary.BigEndian.PutUint64(u64[:], uint64(req.NumSegments))
	out = append(out, u64[:]...)
	binary.BigEndian.PutUint32(l[:], uint32(req.K))
	out = append(out, l[:]...)
	binary.BigEndian.PutUint32(l[:], uint32(len(req.Nonce)))
	out = append(out, l[:]...)
	out = append(out, req.Nonce...)
	return out
}

// DecodeAuditRequest parses EncodeAuditRequest's output and validates it.
func DecodeAuditRequest(b []byte) (AuditRequest, error) {
	r := &byteReader{b: b}
	id, err := r.lenPrefixed()
	if err != nil {
		return AuditRequest{}, err
	}
	n, err := r.u64()
	if err != nil {
		return AuditRequest{}, err
	}
	k, err := r.u32()
	if err != nil {
		return AuditRequest{}, err
	}
	nonce, err := r.lenPrefixed()
	if err != nil {
		return AuditRequest{}, err
	}
	if r.off != len(b) {
		return AuditRequest{}, fmt.Errorf("%w: trailing bytes", ErrBadTranscript)
	}
	req := AuditRequest{
		FileID:      string(id),
		NumSegments: int64(n),
		K:           int(k),
		Nonce:       append([]byte{}, nonce...),
	}
	if err := req.Validate(); err != nil {
		return AuditRequest{}, err
	}
	return req, nil
}
