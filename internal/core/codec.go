package core

import (
	"encoding/binary"
	"fmt"

	"repro/internal/geo"
	"repro/internal/merkle"
	"time"
)

// Wire codecs for the TPA↔verifier leg of a distributed deployment. The
// transcript's canonical signing encoding (Transcript.Marshal) is fully
// length-delimited, so it doubles as the wire format; the signature is
// appended with its own length prefix.

// byteReader tracks a parse position over a buffer.
type byteReader struct {
	b   []byte
	off int
}

func (r *byteReader) take(n int) ([]byte, error) {
	if n < 0 || r.off+n > len(r.b) {
		return nil, fmt.Errorf("%w: need %d bytes at offset %d of %d", ErrBadTranscript, n, r.off, len(r.b))
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out, nil
}

func (r *byteReader) u32() (uint32, error) {
	b, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b), nil
}

func (r *byteReader) u64() (uint64, error) {
	b, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(b), nil
}

func (r *byteReader) lenPrefixed() ([]byte, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	return r.take(int(n))
}

// UnmarshalTranscript parses the canonical encoding produced by
// Transcript.Marshal. Round-tripping is exact: re-marshalling the result
// yields the identical bytes, so signatures verify across the wire.
func UnmarshalTranscript(b []byte) (Transcript, error) {
	r := &byteReader{b: b}
	var t Transcript

	fid, err := r.lenPrefixed()
	if err != nil {
		return t, err
	}
	t.FileID = string(fid)
	nonce, err := r.lenPrefixed()
	if err != nil {
		return t, err
	}
	t.Nonce = append([]byte{}, nonce...)

	lat, err := r.u64()
	if err != nil {
		return t, err
	}
	lon, err := r.u64()
	if err != nil {
		return t, err
	}
	// Valid fixed-point coordinates (|lat| ≤ 90°, |lon| ≤ 180° at 1e-7°
	// resolution) are small enough to round-trip exactly through
	// float64; anything outside is a malformed fix.
	latI, lonI := int64(lat), int64(lon)
	if latI < -90e7 || latI > 90e7 || lonI < -180e7 || lonI > 180e7 {
		return t, fmt.Errorf("%w: position %d,%d out of range", ErrBadTranscript, latI, lonI)
	}
	t.Position = geo.Position{LatDeg: float64(latI) / 1e7, LonDeg: float64(lonI) / 1e7}

	nRounds, err := r.u32()
	if err != nil {
		return t, err
	}
	if int(nRounds) > len(b) { // each round needs >=21 bytes; cheap sanity cap
		return t, fmt.Errorf("%w: %d rounds in %d bytes", ErrBadTranscript, nRounds, len(b))
	}
	t.Rounds = make([]AuditRound, 0, nRounds)
	for i := uint32(0); i < nRounds; i++ {
		idx, err := r.u64()
		if err != nil {
			return t, err
		}
		rtt, err := r.u64()
		if err != nil {
			return t, err
		}
		flag, err := r.take(1)
		if err != nil {
			return t, err
		}
		if flag[0] > 1 {
			return t, fmt.Errorf("%w: round flag %#x", ErrBadTranscript, flag[0])
		}
		seg, err := r.lenPrefixed()
		if err != nil {
			return t, err
		}
		round := AuditRound{Index: idx, RTT: time.Duration(rtt), Failed: flag[0] == 1}
		if len(seg) > 0 {
			round.Segment = append([]byte{}, seg...)
		}
		t.Rounds = append(t.Rounds, round)
	}
	if r.off != len(b) {
		return t, fmt.Errorf("%w: %d trailing bytes", ErrBadTranscript, len(b)-r.off)
	}
	return t, nil
}

// EncodeSignedTranscript serialises transcript ‖ signature, followed by
// an optional length-prefixed batch-attestation section when the
// transcript is batch-attested. The attestation section is only ever
// produced for peers that negotiated wire.FeatureBatchSign, so old
// decoders (which reject trailing bytes) never see it. A transcript
// that already carries its canonical encoding (finishAudit, decode) is
// not re-marshaled.
func EncodeSignedTranscript(st SignedTranscript) []byte {
	tb := st.raw
	if tb == nil {
		tb = st.Transcript.Marshal()
	}
	var att []byte
	if st.Batch != nil {
		att = EncodeBatchAttestation(*st.Batch)
	}
	out := make([]byte, 0, 12+len(tb)+len(st.Signature)+len(att))
	var l [4]byte
	binary.BigEndian.PutUint32(l[:], uint32(len(tb)))
	out = append(out, l[:]...)
	out = append(out, tb...)
	binary.BigEndian.PutUint32(l[:], uint32(len(st.Signature)))
	out = append(out, l[:]...)
	out = append(out, st.Signature...)
	if att != nil {
		binary.BigEndian.PutUint32(l[:], uint32(len(att)))
		out = append(out, l[:]...)
		out = append(out, att...)
	}
	return out
}

// DecodeSignedTranscript parses EncodeSignedTranscript's output,
// including the optional batch-attestation section.
func DecodeSignedTranscript(b []byte) (SignedTranscript, error) {
	r := &byteReader{b: b}
	tb, err := r.lenPrefixed()
	if err != nil {
		return SignedTranscript{}, err
	}
	tr, err := UnmarshalTranscript(tb)
	if err != nil {
		return SignedTranscript{}, err
	}
	sig, err := r.lenPrefixed()
	if err != nil {
		return SignedTranscript{}, err
	}
	st := SignedTranscript{Transcript: tr, raw: append([]byte{}, tb...)}
	if len(sig) > 0 {
		st.Signature = append([]byte{}, sig...)
	}
	if r.off != len(b) {
		ab, err := r.lenPrefixed()
		if err != nil {
			return SignedTranscript{}, err
		}
		att, err := DecodeBatchAttestation(ab)
		if err != nil {
			return SignedTranscript{}, err
		}
		st.Batch = &att
	}
	if r.off != len(b) {
		return SignedTranscript{}, fmt.Errorf("%w: trailing bytes", ErrBadTranscript)
	}
	return st, nil
}

// maxProofSteps bounds an attestation's Merkle path length. A path of
// 64 steps would imply 2^64 transcripts under one root; anything longer
// is malformed, and the bound keeps decode allocation proportional to
// honest input.
const maxProofSteps = 64

// EncodeBatchAttestation serialises a batch attestation:
// root ‖ len(sig) ‖ sig ‖ leaf index ‖ step count ‖ steps, each step an
// orientation flag byte plus the 32-byte sibling hash.
func EncodeBatchAttestation(att BatchAttestation) []byte {
	out := make([]byte, 0, 32+4+len(att.RootSig)+8+33*len(att.Proof.Steps))
	out = append(out, att.Root[:]...)
	var l [4]byte
	binary.BigEndian.PutUint32(l[:], uint32(len(att.RootSig)))
	out = append(out, l[:]...)
	out = append(out, att.RootSig...)
	binary.BigEndian.PutUint32(l[:], uint32(att.Proof.Index))
	out = append(out, l[:]...)
	binary.BigEndian.PutUint32(l[:], uint32(len(att.Proof.Steps)))
	out = append(out, l[:]...)
	for _, s := range att.Proof.Steps {
		if s.Left {
			out = append(out, 1)
		} else {
			out = append(out, 0)
		}
		out = append(out, s.Sibling[:]...)
	}
	return out
}

// DecodeBatchAttestation parses EncodeBatchAttestation's output. The
// decode is canonical: re-encoding the result yields identical bytes.
func DecodeBatchAttestation(b []byte) (BatchAttestation, error) {
	r := &byteReader{b: b}
	var att BatchAttestation
	root, err := r.take(32)
	if err != nil {
		return att, err
	}
	copy(att.Root[:], root)
	sig, err := r.lenPrefixed()
	if err != nil {
		return att, err
	}
	att.RootSig = append([]byte{}, sig...)
	idx, err := r.u32()
	if err != nil {
		return att, err
	}
	att.Proof.Index = int(idx)
	nSteps, err := r.u32()
	if err != nil {
		return att, err
	}
	if nSteps > maxProofSteps {
		return att, fmt.Errorf("%w: %d proof steps", ErrBadTranscript, nSteps)
	}
	if nSteps > 0 {
		att.Proof.Steps = make([]merkle.ProofStep, nSteps)
	}
	for i := range att.Proof.Steps {
		flag, err := r.take(1)
		if err != nil {
			return att, err
		}
		if flag[0] > 1 {
			return att, fmt.Errorf("%w: step flag %#x", ErrBadTranscript, flag[0])
		}
		sib, err := r.take(32)
		if err != nil {
			return att, err
		}
		att.Proof.Steps[i].Left = flag[0] == 1
		copy(att.Proof.Steps[i].Sibling[:], sib)
	}
	if r.off != len(b) {
		return att, fmt.Errorf("%w: trailing attestation bytes", ErrBadTranscript)
	}
	return att, nil
}

// EncodeAuditRequest serialises an audit request for the TPA→verifier
// leg.
func EncodeAuditRequest(req AuditRequest) []byte {
	id := []byte(req.FileID)
	out := make([]byte, 0, 4+len(id)+8+4+4+len(req.Nonce))
	var l [4]byte
	binary.BigEndian.PutUint32(l[:], uint32(len(id)))
	out = append(out, l[:]...)
	out = append(out, id...)
	var u64 [8]byte
	binary.BigEndian.PutUint64(u64[:], uint64(req.NumSegments))
	out = append(out, u64[:]...)
	binary.BigEndian.PutUint32(l[:], uint32(req.K))
	out = append(out, l[:]...)
	binary.BigEndian.PutUint32(l[:], uint32(len(req.Nonce)))
	out = append(out, l[:]...)
	out = append(out, req.Nonce...)
	return out
}

// DecodeAuditRequest parses EncodeAuditRequest's output and validates it.
func DecodeAuditRequest(b []byte) (AuditRequest, error) {
	r := &byteReader{b: b}
	id, err := r.lenPrefixed()
	if err != nil {
		return AuditRequest{}, err
	}
	n, err := r.u64()
	if err != nil {
		return AuditRequest{}, err
	}
	k, err := r.u32()
	if err != nil {
		return AuditRequest{}, err
	}
	nonce, err := r.lenPrefixed()
	if err != nil {
		return AuditRequest{}, err
	}
	if r.off != len(b) {
		return AuditRequest{}, fmt.Errorf("%w: trailing bytes", ErrBadTranscript)
	}
	req := AuditRequest{
		FileID:      string(id),
		NumSegments: int64(n),
		K:           int(k),
		Nonce:       append([]byte{}, nonce...),
	}
	if err := req.Validate(); err != nil {
		return AuditRequest{}, err
	}
	return req, nil
}
