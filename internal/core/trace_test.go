package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// spanNames collects the names of a trace's spans in recorded order.
func spanNames(tr telemetry.AuditTrace) []string {
	names := make([]string, len(tr.Spans))
	for i, s := range tr.Spans {
		names[i] = s.Name
	}
	return names
}

func countSpans(tr telemetry.AuditTrace, name string) int {
	n := 0
	for _, s := range tr.Spans {
		if s.Name == name {
			n++
		}
	}
	return n
}

// TestSchedulerAuditTracing runs a real audit (flaky transport, retry,
// then acceptance) through a traced scheduler and checks the recorded
// timeline: identity fields, final outcome, one "attempt"/"window-wait"
// pair per attempt, and the verifier's "rounds"/"attest" spans plus the
// TPA's "verify" span from the successful attempt.
func TestSchedulerAuditTracing(t *testing.T) {
	f := newSchedFixture(t)
	tracer := telemetry.NewAuditTracer(8, nil)
	sched := NewScheduler(SchedulerConfig{
		Workers:      1,
		ProverWindow: 1,
		Retries:      2,
		RetryBackoff: time.Millisecond,
		Tracer:       tracer,
	})
	sched.RegisterTenant("t1", f.tpa)
	sched.RegisterProver("flaky", &flakyRunner{
		inner:    &LocalRunner{Verifier: f.verifier, Conn: &memConn{store: f.store}},
		failures: 1,
	})

	verdicts := sched.RunEpoch(context.Background(), []AuditTask{f.task("t1", "flaky", 2)})
	if v := verdicts[0]; v.Outcome != OutcomeAccepted || v.Attempts != 2 {
		t.Fatalf("verdict = %+v, want accepted on attempt 2", v)
	}

	traces := tracer.Snapshot()
	if len(traces) != 1 || tracer.Total() != 1 {
		t.Fatalf("tracer holds %d traces (total %d), want 1", len(traces), tracer.Total())
	}
	tr := traces[0]
	if tr.Tenant != "t1" || tr.Prover != "flaky" || tr.FileID != f.ef.FileID || tr.Epoch != 1 {
		t.Errorf("trace identity = %q/%q/%q epoch %d, want t1/flaky/%q epoch 1",
			tr.Tenant, tr.Prover, tr.FileID, tr.Epoch, f.ef.FileID)
	}
	if tr.Outcome != "accepted" || tr.Attempts != 2 {
		t.Errorf("trace outcome = %q attempts %d, want accepted after 2 attempts", tr.Outcome, tr.Attempts)
	}
	if tr.ElapsedNs <= 0 {
		t.Errorf("trace elapsed = %dns, want > 0", tr.ElapsedNs)
	}
	// Two attempts each wait for the window; only the second attempt
	// reaches the prover's rounds, attestation and TPA verification.
	want := map[string]int{"attempt": 2, "window-wait": 2, "rounds": 1, "attest": 1, "verify": 1}
	for name, n := range want {
		if got := countSpans(tr, name); got != n {
			t.Errorf("span %q recorded %d times, want %d (timeline: %v)", name, got, n, spanNames(tr))
		}
	}
	for _, s := range tr.Spans {
		if s.EndNs < s.StartNs || s.StartNs < 0 {
			t.Errorf("span %q has inverted bounds [%d, %d]", s.Name, s.StartNs, s.EndNs)
		}
		if s.EndNs > tr.ElapsedNs {
			t.Errorf("span %q ends at %dns, after the audit's %dns", s.Name, s.EndNs, tr.ElapsedNs)
		}
	}
}

// TestSchedulerNilTracer pins the tracing seam's default: a scheduler
// without a Tracer runs audits untraced and unharmed.
func TestSchedulerNilTracer(t *testing.T) {
	f := newSchedFixture(t)
	sched := NewScheduler(SchedulerConfig{Workers: 1, ProverWindow: 1})
	sched.RegisterTenant("t1", f.tpa)
	sched.RegisterProver("mem", &LocalRunner{Verifier: f.verifier, Conn: &memConn{store: f.store}})
	verdicts := sched.RunEpoch(context.Background(), []AuditTask{f.task("t1", "mem", 2)})
	if v := verdicts[0]; v.Outcome != OutcomeAccepted {
		t.Fatalf("verdict = %+v, want accepted", v)
	}
}
