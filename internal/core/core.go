package core

import (
	"context"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/blockfile"
	"repro/internal/crypt"
	"repro/internal/geo"
	"repro/internal/gps"
	"repro/internal/merkle"
	"repro/internal/telemetry"
	"repro/internal/vclock"
)

// Errors reported by the protocol layer.
var (
	ErrBadRequest    = errors.New("core: invalid audit request")
	ErrNoRounds      = errors.New("core: transcript has no successful rounds")
	ErrBadTranscript = errors.New("core: malformed transcript")
)

// AuditRequest is the TPA→verifier message opening an audit: the file,
// its segment count ñ, the number of rounds k and a fresh nonce N (§V-B).
type AuditRequest struct {
	FileID      string
	NumSegments int64
	K           int
	Nonce       []byte
}

// Validate checks the request shape.
func (r AuditRequest) Validate() error {
	switch {
	case r.FileID == "":
		return fmt.Errorf("%w: empty file id", ErrBadRequest)
	case r.NumSegments <= 0:
		return fmt.Errorf("%w: %d segments", ErrBadRequest, r.NumSegments)
	case r.K <= 0 || int64(r.K) > r.NumSegments:
		return fmt.Errorf("%w: k=%d of %d", ErrBadRequest, r.K, r.NumSegments)
	case len(r.Nonce) == 0:
		return fmt.Errorf("%w: empty nonce", ErrBadRequest)
	}
	return nil
}

// DeriveIndices expands the audit nonce into k distinct segment indices.
// Both V and A can compute the set, so the TPA can confirm the verifier
// challenged exactly the nonce-committed segments; the prover never sees
// the nonce and cannot prefetch.
func DeriveIndices(nonce []byte, numSegments int64, k int) ([]uint64, error) {
	idx, err := crypt.ChallengeIndices(nonce, []byte("geoproof/indices"), uint64(numSegments), k)
	if err != nil {
		return nil, fmt.Errorf("derive indices: %w", err)
	}
	return idx, nil
}

// AuditRound is one timed exchange: the requested index, the returned
// segment (nil when the request failed) and the measured round-trip time.
type AuditRound struct {
	Index   uint64
	Segment []byte
	RTT     time.Duration
	Failed  bool
}

// Transcript is the record the verifier signs (§V-B): times, challenge
// indices, returned segments, the nonce and V's GPS position.
type Transcript struct {
	FileID   string
	Nonce    []byte
	Position geo.Position
	Rounds   []AuditRound
}

// Marshal produces the canonical byte encoding covered by the signature.
func (t Transcript) Marshal() []byte {
	h := make([]byte, 0, 64+len(t.Rounds)*96)
	appendBytes := func(b []byte) {
		var l [4]byte
		binary.BigEndian.PutUint32(l[:], uint32(len(b)))
		h = append(h, l[:]...)
		h = append(h, b...)
	}
	appendBytes([]byte(t.FileID))
	appendBytes(t.Nonce)
	// Fixed-point 1e-7° coordinates; math.Round (not truncation) makes
	// the encode/decode cycle exact for every valid coordinate.
	var pos [16]byte
	binary.BigEndian.PutUint64(pos[:8], uint64(int64(math.Round(t.Position.LatDeg*1e7))))
	binary.BigEndian.PutUint64(pos[8:], uint64(int64(math.Round(t.Position.LonDeg*1e7))))
	h = append(h, pos[:]...)
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(t.Rounds)))
	h = append(h, n[:]...)
	for _, r := range t.Rounds {
		var hdr [17]byte
		binary.BigEndian.PutUint64(hdr[:8], r.Index)
		binary.BigEndian.PutUint64(hdr[8:16], uint64(r.RTT))
		if r.Failed {
			hdr[16] = 1
		}
		h = append(h, hdr[:]...)
		appendBytes(r.Segment)
	}
	return h
}

// Digest returns the SHA-256 digest of the canonical encoding; useful for
// logging and deduplication. In batch-signing mode this digest is also
// the Merkle leaf the verifier commits to.
func (t Transcript) Digest() [32]byte { return sha256.Sum256(t.Marshal()) }

// BatchAttestation authenticates a transcript through a batch-signed
// Merkle root instead of a per-transcript signature: the verifier signed
// Root (domain-separated, crypt.SignBatchRoot) and Proof ties the
// transcript's digest to Root at leaf Proof.Index. The TPA verifies the
// root signature once per batch and one SHA-256 path per transcript.
type BatchAttestation struct {
	Root    merkle.Hash
	RootSig []byte
	Proof   merkle.Proof
}

// SignedTranscript is the verifier's final message to the TPA. Exactly
// one attestation form is populated: Signature (per-transcript ECDSA
// over the canonical transcript encoding) or Batch (root signature +
// inclusion proof). When both are somehow present, Batch wins.
type SignedTranscript struct {
	Transcript Transcript
	Signature  []byte
	Batch      *BatchAttestation

	// raw caches the canonical transcript encoding on the producer/wire
	// side (finishAudit, codec decode) so signing, leaf digesting and
	// wire encoding marshal once. Verification never trusts it: a caller
	// may mutate Transcript after the cache was taken, and the TPA's
	// verdict must follow the bytes it re-marshals itself.
	raw []byte
}

// AttestationMode names which attestation form a verdict was produced
// from.
type AttestationMode uint8

// Attestation modes recorded in reports and the scheduler's ledger.
const (
	AttestNone          AttestationMode = iota // no transcript (timeout/error verdicts)
	AttestPerTranscript                        // §V-B per-transcript ECDSA signature
	AttestBatch                                // Merkle-batched root signature + inclusion proof
)

// String returns the ledger-facing name of the mode.
func (m AttestationMode) String() string {
	switch m {
	case AttestPerTranscript:
		return "per-transcript"
	case AttestBatch:
		return "batch"
	default:
		return "none"
	}
}

// Mode reports the transcript's attestation form.
func (st SignedTranscript) Mode() AttestationMode {
	if st.Batch != nil {
		return AttestBatch
	}
	return AttestPerTranscript
}

// ProverConn is the verifier's channel to the prover. Implementations
// carry the request over the simulated network (advancing virtual time)
// or over a real TCP connection; the verifier times the call with its own
// clock either way.
//
// GetSegment must honour ctx: return promptly once ctx is cancelled or
// past its deadline (transports poke an I/O deadline to unblock reads in
// flight). This is what lets the audit scheduler truly cancel a
// timed-out attempt instead of abandoning its goroutine.
type ProverConn interface {
	GetSegment(ctx context.Context, fileID string, index uint64) ([]byte, error)
}

// BatchSegmentResult is one round's outcome from a pipelined challenge
// batch: the segment (nil when the prover failed the round), the RTT the
// transport measured for it, and the failure flag.
type BatchSegmentResult struct {
	Data   []byte
	RTT    time.Duration
	Failed bool
}

// BatchProverConn is the optional transport capability for pipelined
// audits: all challenge indices are written in one flush and every
// response is timed on arrival by the transport itself. Verifier.RunAudit
// uses it automatically when the connection offers it, cutting the audit
// from k serial round trips to one. Implementations must preserve
// request order (result i answers indices[i]) and report per-round
// prover failures as Failed results, reserving the error return for
// whole-batch transport failures.
type BatchProverConn interface {
	ProverConn
	GetSegmentBatch(ctx context.Context, fileID string, indices []uint64) ([]BatchSegmentResult, error)
}

// Verifier is the tamper-proof device: a signing key, a GPS receiver and
// a clock. The zero value is unusable; construct with NewVerifier.
type Verifier struct {
	signer *crypt.Signer
	gps    *gps.Receiver
	clock  vclock.Clock
	batch  *crypt.BatchSigner
}

// NewVerifier assembles a verifier device. A nil clock defaults to the
// wall clock.
func NewVerifier(signer *crypt.Signer, receiver *gps.Receiver, clock vclock.Clock) (*Verifier, error) {
	if signer == nil || receiver == nil {
		return nil, errors.New("core: verifier needs a signer and a GPS receiver")
	}
	if clock == nil {
		clock = vclock.Real{}
	}
	return &Verifier{signer: signer, gps: receiver, clock: clock}, nil
}

// Public returns the verifier's verification key, registered with the TPA
// at installation time.
func (v *Verifier) Public() *crypt.Signer { return v.signer }

// WithBatchSigner returns a copy of the verifier whose finishAudit
// enqueues transcript digests into bs instead of signing each
// transcript inline — the batch amortizes one P-256 signature over
// every audit that lands inside the batcher's size/latency window. A
// nil bs returns a copy that signs per transcript. The copy shares the
// device's key, GPS receiver and clock, so timing semantics are
// untouched: only the attestation form changes.
func (v *Verifier) WithBatchSigner(bs *crypt.BatchSigner) *Verifier {
	w := *v
	w.batch = bs
	return &w
}

// RunAudit executes the distance-bounding phase: it derives the challenge
// indices from the nonce, requests each segment over conn while timing
// the round trip on its own clock, then signs the transcript together
// with its GPS fix. Failed rounds are recorded rather than aborting the
// audit — the TPA decides what failures mean.
//
// ctx cancellation aborts the audit between (and, for ctx-aware
// transports, inside) rounds with ctx's error: a cancelled audit yields
// no transcript, so the caller's verdict is its own timeout/cancel
// handling, never a half-signed record.
func (v *Verifier) RunAudit(ctx context.Context, req AuditRequest, conn ProverConn) (SignedTranscript, error) {
	if err := req.Validate(); err != nil {
		return SignedTranscript{}, err
	}
	if conn == nil {
		return SignedTranscript{}, fmt.Errorf("%w: nil prover connection", ErrBadRequest)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	indices, err := DeriveIndices(req.Nonce, req.NumSegments, req.K)
	if err != nil {
		return SignedTranscript{}, err
	}
	tr := telemetry.TraceFrom(ctx)
	endRounds := tr.Span("rounds")
	var rounds []AuditRound
	if bc, ok := conn.(BatchProverConn); ok {
		// Pipelined path: the transport flushes every challenge at once
		// and times each response on arrival with its own (wall) clock, so
		// the audit costs one round trip instead of k.
		results, err := bc.GetSegmentBatch(ctx, req.FileID, indices)
		if err != nil {
			return SignedTranscript{}, fmt.Errorf("core: batch audit: %w", err)
		}
		if len(results) != len(indices) {
			return SignedTranscript{}, fmt.Errorf("%w: batch returned %d of %d rounds", ErrBadTranscript, len(results), len(indices))
		}
		rounds = make([]AuditRound, len(indices))
		for i, r := range results {
			rounds[i] = AuditRound{Index: indices[i], RTT: r.RTT, Failed: r.Failed}
			if !r.Failed {
				rounds[i].Segment = r.Data
			}
		}
	} else {
		rounds = make([]AuditRound, 0, len(indices))
		for _, idx := range indices {
			if err := ctx.Err(); err != nil {
				return SignedTranscript{}, fmt.Errorf("core: audit cancelled after %d rounds: %w", len(rounds), err)
			}
			start := v.clock.Now()
			seg, err := conn.GetSegment(ctx, req.FileID, idx)
			rtt := v.clock.Now().Sub(start)
			if ctx.Err() != nil {
				// The round lost a race with cancellation: whatever came back
				// (usually a poked-deadline I/O error) is not evidence about
				// the prover, so drop the audit rather than record it.
				return SignedTranscript{}, fmt.Errorf("core: audit cancelled after %d rounds: %w", len(rounds), ctx.Err())
			}
			round := AuditRound{Index: idx, RTT: rtt}
			if err != nil {
				round.Failed = true
			} else {
				round.Segment = seg
			}
			rounds = append(rounds, round)
		}
	}
	endRounds()
	endAttest := tr.Span("attest")
	st, err := v.finishAudit(req, rounds)
	endAttest()
	return st, err
}

// finishAudit attaches the GPS fix and attests the completed rounds:
// per-transcript signature by default, batch enqueue when a
// crypt.BatchSigner is attached. The transcript is marshaled exactly
// once — the same buffer feeds the signature (or the batch leaf digest)
// and is cached for wire encoding.
func (v *Verifier) finishAudit(req AuditRequest, rounds []AuditRound) (SignedTranscript, error) {
	tr := Transcript{
		FileID:   req.FileID,
		Nonce:    append([]byte{}, req.Nonce...),
		Position: v.gps.Fix(),
		Rounds:   rounds,
	}
	raw := tr.Marshal()
	if v.batch != nil {
		att, err := v.batch.Sign(sha256.Sum256(raw))
		if err != nil {
			return SignedTranscript{}, fmt.Errorf("batch-sign transcript: %w", err)
		}
		return SignedTranscript{
			Transcript: tr,
			Batch:      &BatchAttestation{Root: att.Root, RootSig: att.Sig, Proof: att.Proof},
			raw:        raw,
		}, nil
	}
	sig, err := v.signer.Sign(raw)
	if err != nil {
		return SignedTranscript{}, fmt.Errorf("sign transcript: %w", err)
	}
	return SignedTranscript{Transcript: tr, Signature: sig, raw: raw}, nil
}

// NonceEqual compares nonces in constant time.
func NonceEqual(a, b []byte) bool { return hmac.Equal(a, b) }

// SegmentSizeFor returns the expected on-wire segment size for a layout —
// a convenience re-export so transports need not import blockfile.
func SegmentSizeFor(l blockfile.Layout) int { return l.SegmentSize() }
