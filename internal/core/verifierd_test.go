package core

import (
	"bytes"
	"context"
	"math"
	"net"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/cloud"
	"repro/internal/crypt"
	"repro/internal/geo"
	"repro/internal/gps"
	"repro/internal/wire"
)

func TestTranscriptCodecRoundTrip(t *testing.T) {
	tr := Transcript{
		FileID:   "tenant/db",
		Nonce:    []byte{1, 2, 3, 4},
		Position: geo.Brisbane,
		Rounds: []AuditRound{
			{Index: 5, Segment: []byte{9, 8, 7}, RTT: 13 * time.Millisecond},
			{Index: 6, Failed: true, RTT: time.Millisecond},
			{Index: 7, Segment: []byte{}, RTT: 0},
		},
	}
	got, err := UnmarshalTranscript(tr.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Marshal(), tr.Marshal()) {
		t.Fatal("re-marshal differs: signatures would break across the wire")
	}
	if got.FileID != tr.FileID || !bytes.Equal(got.Nonce, tr.Nonce) || len(got.Rounds) != 3 {
		t.Fatalf("fields lost: %+v", got)
	}
	if math.Abs(got.Position.LatDeg-tr.Position.LatDeg) > 1e-6 {
		t.Fatalf("position drifted: %v", got.Position)
	}
	if !got.Rounds[1].Failed || got.Rounds[1].RTT != time.Millisecond {
		t.Fatalf("round 1 wrong: %+v", got.Rounds[1])
	}
}

func TestTranscriptCodecRejectsGarbage(t *testing.T) {
	tr := Transcript{FileID: "f", Nonce: []byte{1}, Rounds: []AuditRound{{Index: 1}}}
	good := tr.Marshal()
	for _, bad := range [][]byte{
		nil,
		{1, 2, 3},
		good[:len(good)-1],
		append(append([]byte{}, good...), 0xFF),
	} {
		if _, err := UnmarshalTranscript(bad); err == nil {
			t.Fatalf("garbage of %d bytes accepted", len(bad))
		}
	}
	// Absurd round count must fail fast, not allocate.
	huge := []byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := UnmarshalTranscript(huge); err == nil {
		t.Fatal("absurd round count accepted")
	}
}

func TestAuditRequestCodecRoundTrip(t *testing.T) {
	f := func(fileID string, n uint32, k uint8, nonce []byte) bool {
		if fileID == "" || n == 0 || len(nonce) == 0 {
			return true
		}
		kk := int(k)%int(n) + 1
		req := AuditRequest{FileID: fileID, NumSegments: int64(n), K: kk, Nonce: nonce}
		got, err := DecodeAuditRequest(EncodeAuditRequest(req))
		return err == nil && got.FileID == req.FileID && got.NumSegments == req.NumSegments &&
			got.K == req.K && bytes.Equal(got.Nonce, req.Nonce)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeAuditRequest([]byte{1}); err == nil {
		t.Fatal("short request accepted")
	}
	// Invalid semantic content (k=0) must be rejected at decode.
	bad := EncodeAuditRequest(AuditRequest{FileID: "f", NumSegments: 10, K: 0, Nonce: []byte{1}})
	if _, err := DecodeAuditRequest(bad); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestSignedTranscriptCodec(t *testing.T) {
	st := SignedTranscript{
		Transcript: Transcript{FileID: "f", Nonce: []byte{1}, Position: geo.Sydney,
			Rounds: []AuditRound{{Index: 2, Segment: []byte{5}, RTT: time.Millisecond}}},
		Signature: []byte{0xDE, 0xAD},
	}
	got, err := DecodeSignedTranscript(EncodeSignedTranscript(st))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Signature, st.Signature) || got.Transcript.FileID != "f" {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if _, err := DecodeSignedTranscript([]byte{0, 0}); err == nil {
		t.Fatal("garbage accepted")
	}
}

// TestThreePartyDistributedAudit runs prover, verifier daemon and TPA as
// three separate TCP endpoints on loopback — the full Fig. 4 deployment.
func TestThreePartyDistributedAudit(t *testing.T) {
	enc, ef, site := tcpFixture(t)

	// Prover daemon.
	proverAddr, stopProver := startServer(t, &cloud.HonestProvider{Site: site}, false)
	defer stopProver()

	// Verifier daemon wired to the prover.
	signer, err := crypt.NewSigner()
	if err != nil {
		t.Fatal(err)
	}
	verifier, err := NewVerifier(signer, &gps.Receiver{True: geo.Brisbane}, nil)
	if err != nil {
		t.Fatal(err)
	}
	vs := &VerifierServer{
		Verifier: verifier,
		DialProver: func() (ProverConn, error) {
			return DialProver(proverAddr, time.Second)
		},
	}
	vlis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	vdone := make(chan struct{})
	go func() {
		defer close(vdone)
		_ = vs.Serve(vlis)
	}()
	defer func() {
		_ = vs.Close()
		<-vdone
	}()

	// TPA connects to the verifier daemon only.
	policy := DefaultPolicy(cloud.SLA{Center: geo.Brisbane, RadiusKm: 100})
	policy.TMax = 250 * time.Millisecond
	tpa, err := NewTPA(enc, signer.Public(), policy)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := DialVerifier(vlis.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	req, err := tpa.NewRequest(ef.FileID, ef.Layout, 8)
	if err != nil {
		t.Fatal(err)
	}
	st, err := remote.RunAudit(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	rep := tpa.VerifyAudit(req, ef.Layout, st)
	if !rep.Accepted {
		t.Fatalf("distributed audit rejected: %s", rep.Reason())
	}
	if rep.SegmentsOK != 8 {
		t.Fatalf("segments ok %d", rep.SegmentsOK)
	}

	// A second audit over the same TPA connection.
	req2, _ := tpa.NewRequest(ef.FileID, ef.Layout, 4)
	st2, err := remote.RunAudit(context.Background(), req2)
	if err != nil {
		t.Fatal(err)
	}
	if rep2 := tpa.VerifyAudit(req2, ef.Layout, st2); !rep2.Accepted {
		t.Fatalf("second audit rejected: %s", rep2.Reason())
	}
}

func TestVerifierServerRejectsBadRequest(t *testing.T) {
	signer, _ := crypt.NewSigner()
	verifier, _ := NewVerifier(signer, &gps.Receiver{True: geo.Brisbane}, nil)
	vs := &VerifierServer{
		Verifier:   verifier,
		DialProver: func() (ProverConn, error) { return nil, wire.ErrRemote },
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); _ = vs.Serve(lis) }()
	defer func() { _ = vs.Close(); <-done }()

	conn, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Malformed request payload.
	if err := wire.WriteFrame(conn, wire.TypeAuditRequest, []byte{1, 2}); err != nil {
		t.Fatal(err)
	}
	typ, _, err := wire.ReadFrame(conn)
	if err != nil || typ != wire.TypeError {
		t.Fatalf("typ=%d err=%v", typ, err)
	}
	// Valid request but prover unreachable.
	req := AuditRequest{FileID: "f", NumSegments: 10, K: 2, Nonce: []byte{1}}
	if err := wire.WriteFrame(conn, wire.TypeAuditRequest, EncodeAuditRequest(req)); err != nil {
		t.Fatal(err)
	}
	typ, _, err = wire.ReadFrame(conn)
	if err != nil || typ != wire.TypeError {
		t.Fatalf("typ=%d err=%v", typ, err)
	}
	// Unknown frame type.
	if err := wire.WriteFrame(conn, 42, nil); err != nil {
		t.Fatal(err)
	}
	typ, _, err = wire.ReadFrame(conn)
	if err != nil || typ != wire.TypeError {
		t.Fatalf("typ=%d err=%v", typ, err)
	}
}
